//! A Catfish-style **key-value service** over a B+-tree — the paper's §VI
//! generality claim realized at the protocol level.
//!
//! Everything structural is shared with the R-tree service: the same ring
//! buffers ([`crate::ring`]), the same one-sided verbs, the same versioned
//! chunk validation (now over [`catfish_bplus`] chunks), the same CPU
//! heartbeats, and the *same* Algorithm 1 implementation
//! ([`crate::adaptive::AdaptiveState`]) deciding per-request between fast
//! messaging and offloaded traversal. Only the index and the wire payloads
//! differ — which is precisely the paper's point.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use catfish_bplus::{decode_meta, BpChunkStore, BpConfig, BpLayout, BpNode, BpTree};
use catfish_rdma::{Endpoint, MemoryRegion, NetProfile};
use catfish_rtree::codec::CodecError;
use catfish_rtree::NodeId;
use catfish_simnet::{now, sleep, spawn, CpuPool, Network, SimDuration, SimTime};

use crate::adaptive::AdaptiveState;
use crate::config::{AccessMode, ClientConfig, ServerConfig, ServerMode};
use crate::conn::{establish, ClientChannel, RkeyAllocator, ServerChannel};
use crate::ring::RingSender;
use crate::store::MrMemory;

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

const TAG_GET: u8 = 32;
const TAG_PUT: u8 = 33;
const TAG_REMOVE: u8 = 34;
const TAG_RANGE: u8 = 35;
const TAG_RESP_CONT: u8 = 36;
const TAG_RESP_END: u8 = 37;
const TAG_HEARTBEAT: u8 = 38;

/// A key-value service message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvMessage {
    /// Look up one key.
    GetReq {
        /// Client-local sequence number.
        seq: u32,
        /// Key.
        key: u64,
    },
    /// Insert or replace one pair.
    PutReq {
        /// Client-local sequence number.
        seq: u32,
        /// Key.
        key: u64,
        /// Value.
        value: u64,
    },
    /// Remove one key.
    RemoveReq {
        /// Client-local sequence number.
        seq: u32,
        /// Key.
        key: u64,
    },
    /// All pairs with `lo <= key <= hi`.
    RangeReq {
        /// Client-local sequence number.
        seq: u32,
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Non-final slice of range results.
    RespCont {
        /// Echo of the request sequence number.
        seq: u32,
        /// Pairs in this segment.
        entries: Vec<(u64, u64)>,
    },
    /// Final response segment.
    RespEnd {
        /// Echo of the request sequence number.
        seq: u32,
        /// Pairs in this segment (get: 0 or 1; put/remove: previous pair
        /// if any).
        entries: Vec<(u64, u64)>,
        /// 1 if the operation found/affected a key.
        status: u32,
    },
    /// Server CPU utilization heartbeat.
    Heartbeat {
        /// Utilization × 1000.
        util_permille: u16,
    },
}

impl KvMessage {
    /// Serializes to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            KvMessage::GetReq { seq, key } => {
                out.push(TAG_GET);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            KvMessage::PutReq { seq, key, value } => {
                out.push(TAG_PUT);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            KvMessage::RemoveReq { seq, key } => {
                out.push(TAG_REMOVE);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            KvMessage::RangeReq { seq, lo, hi } => {
                out.push(TAG_RANGE);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            KvMessage::RespCont { seq, entries } => {
                out.push(TAG_RESP_CONT);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (k, v) in entries {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            KvMessage::RespEnd {
                seq,
                entries,
                status,
            } => {
                out.push(TAG_RESP_END);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&status.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (k, v) in entries {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            KvMessage::Heartbeat { util_permille } => {
                out.push(TAG_HEARTBEAT);
                out.extend_from_slice(&util_permille.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes from bytes.
    ///
    /// # Errors
    ///
    /// Returns a static description on truncation or unknown tags.
    pub fn decode(buf: &[u8]) -> Result<KvMessage, &'static str> {
        let (&tag, rest) = buf.split_first().ok_or("empty message")?;
        let u32_at = |o: usize| -> Result<u32, &'static str> {
            rest.get(o..o + 4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("sized")))
                .ok_or("truncated")
        };
        let u64_at = |o: usize| -> Result<u64, &'static str> {
            rest.get(o..o + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("sized")))
                .ok_or("truncated")
        };
        match tag {
            TAG_GET => Ok(KvMessage::GetReq {
                seq: u32_at(0)?,
                key: u64_at(4)?,
            }),
            TAG_PUT => Ok(KvMessage::PutReq {
                seq: u32_at(0)?,
                key: u64_at(4)?,
                value: u64_at(12)?,
            }),
            TAG_REMOVE => Ok(KvMessage::RemoveReq {
                seq: u32_at(0)?,
                key: u64_at(4)?,
            }),
            TAG_RANGE => Ok(KvMessage::RangeReq {
                seq: u32_at(0)?,
                lo: u64_at(4)?,
                hi: u64_at(12)?,
            }),
            TAG_RESP_CONT => {
                let seq = u32_at(0)?;
                let n = u32_at(4)? as usize;
                if rest.len() < 8usize.saturating_add(n.saturating_mul(16)) {
                    return Err("truncated");
                }
                let mut entries = Vec::with_capacity(n);
                for i in 0..n {
                    entries.push((u64_at(8 + 16 * i)?, u64_at(16 + 16 * i)?));
                }
                Ok(KvMessage::RespCont { seq, entries })
            }
            TAG_RESP_END => {
                let seq = u32_at(0)?;
                let status = u32_at(4)?;
                let n = u32_at(8)? as usize;
                if rest.len() < 12usize.saturating_add(n.saturating_mul(16)) {
                    return Err("truncated");
                }
                let mut entries = Vec::with_capacity(n);
                for i in 0..n {
                    entries.push((u64_at(12 + 16 * i)?, u64_at(20 + 16 * i)?));
                }
                Ok(KvMessage::RespEnd {
                    seq,
                    entries,
                    status,
                })
            }
            TAG_HEARTBEAT => {
                let b = rest.get(0..2).ok_or("truncated")?;
                Ok(KvMessage::Heartbeat {
                    util_permille: u16::from_le_bytes(b.try_into().expect("sized")),
                })
            }
            _ => Err("unknown kv tag"),
        }
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Bootstrap info for offloading KV clients.
#[derive(Debug, Clone, Copy)]
pub struct KvTreeHandle {
    /// rkey of the registered B+-tree arena.
    pub rkey: u32,
    /// Chunk geometry.
    pub layout: BpLayout,
}

struct KvInner {
    endpoint: Endpoint,
    cpu: CpuPool,
    cfg: ServerConfig,
    tree: RefCell<BpTree<BpChunkStore<MrMemory>>>,
    rkey: u32,
    layout: BpLayout,
    rkeys: RkeyAllocator,
    heartbeat_targets: RefCell<Vec<RingSender>>,
}

/// The key-value server (event-driven only).
#[derive(Clone)]
pub struct KvServer {
    inner: Rc<KvInner>,
}

impl fmt::Debug for KvServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvServer")
            .field("node", &self.inner.endpoint.node())
            .field("len", &self.inner.tree.borrow().len())
            .finish()
    }
}

impl KvServer {
    /// Builds a KV server hosting `items` in a registered B+-tree arena.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.mode` is [`ServerMode::Polling`] (the KV service
    /// only implements the event-driven worker).
    pub fn build(
        net: &Network,
        profile: &NetProfile,
        cfg: ServerConfig,
        bp_config: BpConfig,
        items: Vec<(u64, u64)>,
        rkeys: &RkeyAllocator,
    ) -> KvServer {
        assert!(
            cfg.mode == ServerMode::EventDriven,
            "the KV service implements the event-driven worker only"
        );
        let node = net.add_node(profile.link);
        let endpoint = Endpoint::new(net, node, profile.rdma);
        let cpu = CpuPool::new(cfg.cores, cfg.quantum);
        let layout = BpLayout::for_max_keys(bp_config.max_keys);
        let chunks = (items.len() / bp_config.min_keys().max(1) + 1024) * 2;
        let rkey = rkeys.alloc();
        let mr = MemoryRegion::new(layout.arena_bytes(chunks as u32), rkey);
        endpoint.register(mr.clone());
        let mem = MrMemory::new(mr, SimDuration::ZERO);
        let mut tree = BpTree::new(BpChunkStore::new(mem, layout), bp_config);
        for (k, v) in items {
            tree.insert(k, v);
        }
        tree.store().mem().set_torn_window(cfg.torn_write_window);
        KvServer {
            inner: Rc::new(KvInner {
                endpoint,
                cpu,
                cfg,
                tree: RefCell::new(tree),
                rkey,
                layout,
                rkeys: rkeys.clone(),
                heartbeat_targets: RefCell::new(Vec::new()),
            }),
        }
    }

    /// The server's RDMA endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.inner.endpoint
    }

    /// The worker core pool.
    pub fn cpu(&self) -> &CpuPool {
        &self.inner.cpu
    }

    /// Bootstrap info for offloading clients.
    pub fn tree_handle(&self) -> KvTreeHandle {
        KvTreeHandle {
            rkey: self.inner.rkey,
            layout: self.inner.layout,
        }
    }

    /// Runs `f` with shared access to the tree (tests).
    pub fn with_tree<R>(&self, f: impl FnOnce(&BpTree<BpChunkStore<MrMemory>>) -> R) -> R {
        f(&self.inner.tree.borrow())
    }

    /// Accepts a connection and spawns its event-driven worker.
    pub fn accept(&self, client_ep: &Endpoint) -> ClientChannel {
        let (cc, sc) = establish(
            client_ep,
            &self.inner.endpoint,
            self.inner.cfg.ring_capacity,
            &self.inner.rkeys,
        );
        self.inner
            .heartbeat_targets
            .borrow_mut()
            .push(sc.tx.clone());
        let this = self.clone();
        spawn(async move { this.worker(sc).await });
        cc
    }

    /// Starts the heartbeat publisher.
    pub fn start_heartbeats(&self) {
        let this = self.clone();
        spawn(async move {
            let mut last = this.inner.cpu.sample();
            loop {
                sleep(this.inner.cfg.heartbeat_interval).await;
                let cur = this.inner.cpu.sample();
                let util = this.inner.cpu.utilization_between(&last, &cur);
                last = cur;
                // Encode once and share the bytes — same fan-out fix as
                // the R-tree server's heartbeat loop.
                let msg: Rc<[u8]> = KvMessage::Heartbeat {
                    util_permille: (util * 1000.0).round().min(1000.0) as u16,
                }
                .encode()
                .into();
                let targets: Vec<RingSender> = this.inner.heartbeat_targets.borrow().clone();
                for tx in targets {
                    tx.send(&msg, 0).await;
                }
            }
        });
    }

    async fn worker(&self, ch: ServerChannel) {
        loop {
            let bytes = ch.rx.wait_message().await;
            let Ok(msg) = KvMessage::decode(&bytes) else {
                continue;
            };
            let cost = self.inner.cfg.cost;
            let height = u64::from(self.inner.tree.borrow().height());
            match msg {
                KvMessage::GetReq { seq, key } => {
                    self.inner
                        .cpu
                        .run(cost.dispatch + cost.node_visit * height.max(1))
                        .await;
                    let got = self.inner.tree.borrow().get(key);
                    let (entries, status) = match got {
                        Some(v) => (vec![(key, v)], 1),
                        None => (Vec::new(), 0),
                    };
                    self.respond(
                        &ch,
                        KvMessage::RespEnd {
                            seq,
                            entries,
                            status,
                        },
                    );
                }
                KvMessage::PutReq { seq, key, value } => {
                    self.inner
                        .cpu
                        .run(cost.dispatch + cost.write_op + cost.node_visit * (height + 1))
                        .await;
                    let old = self.inner.tree.borrow_mut().insert(key, value);
                    let (entries, status) = match old {
                        Some(v) => (vec![(key, v)], 1),
                        None => (Vec::new(), 0),
                    };
                    self.respond(
                        &ch,
                        KvMessage::RespEnd {
                            seq,
                            entries,
                            status,
                        },
                    );
                }
                KvMessage::RemoveReq { seq, key } => {
                    self.inner
                        .cpu
                        .run(cost.dispatch + cost.write_op + cost.node_visit * (height + 1))
                        .await;
                    let old = self.inner.tree.borrow_mut().remove(key);
                    let (entries, status) = match old {
                        Some(v) => (vec![(key, v)], 1),
                        None => (Vec::new(), 0),
                    };
                    self.respond(
                        &ch,
                        KvMessage::RespEnd {
                            seq,
                            entries,
                            status,
                        },
                    );
                }
                KvMessage::RangeReq { seq, lo, hi } => {
                    let entries = self.inner.tree.borrow().range(lo, hi);
                    self.inner
                        .cpu
                        .run(
                            cost.dispatch
                                + cost.node_visit * height.max(1)
                                + cost.per_result * entries.len() as u64,
                        )
                        .await;
                    let seg = self.inner.cfg.response_segment_results.max(1);
                    let tx = ch.tx.clone();
                    spawn(async move {
                        let mut rest = entries;
                        loop {
                            if rest.len() <= seg {
                                tx.send(
                                    &KvMessage::RespEnd {
                                        seq,
                                        entries: rest,
                                        status: 1,
                                    }
                                    .encode(),
                                    0,
                                )
                                .await;
                                return;
                            }
                            let tail = rest.split_off(seg);
                            tx.send(&KvMessage::RespCont { seq, entries: rest }.encode(), 0)
                                .await;
                            rest = tail;
                        }
                    });
                }
                _ => {}
            }
        }
    }

    fn respond(&self, ch: &ServerChannel, msg: KvMessage) {
        let tx = ch.tx.clone();
        spawn(async move {
            tx.send(&msg.encode(), 0).await;
        });
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// KV client counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvClientStats {
    /// Gets served via the ring.
    pub fast_gets: u64,
    /// Gets served via one-sided traversal.
    pub offloaded_gets: u64,
    /// Puts issued.
    pub puts: u64,
    /// Removes issued.
    pub removes: u64,
    /// Range queries issued.
    pub ranges: u64,
    /// Torn-read retries during offloaded traversals.
    pub torn_retries: u64,
    /// Offloaded traversals restarted after inconsistencies.
    pub restarts: u64,
}

/// A key-value client with the same three access modes as the R-tree
/// client; point lookups may be offloaded, writes always use the ring,
/// range scans use the ring (the server walks its leaf chain locally).
pub struct KvClient {
    ch: ClientChannel,
    cfg: ClientConfig,
    tree: KvTreeHandle,
    seq: u32,
    adaptive: AdaptiveState,
    meta_cache: Option<(catfish_rtree::TreeMeta, SimTime)>,
    stats: KvClientStats,
}

impl fmt::Debug for KvClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvClient").field("seq", &self.seq).finish()
    }
}

impl KvClient {
    /// Creates a client over an established channel.
    pub fn new(ch: ClientChannel, tree: KvTreeHandle, cfg: ClientConfig, seed: u64) -> Self {
        let params = match cfg.mode {
            AccessMode::Adaptive(p) => p,
            _ => Default::default(),
        };
        KvClient {
            ch,
            cfg,
            tree,
            seq: 0,
            adaptive: AdaptiveState::new(params, seed),
            meta_cache: None,
            stats: KvClientStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> KvClientStats {
        self.stats
    }

    fn drain_pending(&mut self) {
        while let Some(bytes) = self.ch.rx.try_pop() {
            if let Ok(KvMessage::Heartbeat { util_permille }) = KvMessage::decode(&bytes) {
                self.adaptive
                    .note_heartbeat(f64::from(util_permille) / 1000.0);
            }
        }
    }

    /// Looks up `key`, routing per the configured access mode.
    pub async fn get(&mut self, key: u64) -> Option<u64> {
        self.drain_pending();
        let offload = match self.cfg.mode {
            AccessMode::FastMessaging => false,
            AccessMode::Offloading => true,
            AccessMode::Adaptive(_) => self.adaptive.decide(),
        };
        if offload {
            self.stats.offloaded_gets += 1;
            self.offload_get(key).await
        } else {
            self.stats.fast_gets += 1;
            self.fast_get(key).await
        }
    }

    /// Inserts or replaces a pair through the server; returns the previous
    /// value if any.
    pub async fn put(&mut self, key: u64, value: u64) -> Option<u64> {
        self.drain_pending();
        self.stats.puts += 1;
        self.seq += 1;
        let seq = self.seq;
        self.ch
            .tx
            .send(&KvMessage::PutReq { seq, key, value }.encode(), seq)
            .await;
        self.wait_end(seq).await.1.first().map(|&(_, v)| v)
    }

    /// Removes a key through the server; returns its value if present.
    pub async fn remove(&mut self, key: u64) -> Option<u64> {
        self.drain_pending();
        self.stats.removes += 1;
        self.seq += 1;
        let seq = self.seq;
        self.ch
            .tx
            .send(&KvMessage::RemoveReq { seq, key }.encode(), seq)
            .await;
        self.wait_end(seq).await.1.first().map(|&(_, v)| v)
    }

    /// All pairs with `lo <= key <= hi`, gathered entirely with one-sided
    /// reads: descend to the leaf containing `lo`, then walk the leaf
    /// chain. Falls back to the server-side [`KvClient::range`] after
    /// repeated inconsistencies.
    pub async fn range_offloaded(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.drain_pending();
        self.stats.ranges += 1;
        for _ in 0..8 {
            match self.range_attempt(lo, hi).await {
                Ok(out) => return out,
                Err(()) => {
                    self.stats.restarts += 1;
                    self.meta_cache = None;
                }
            }
        }
        self.stats.ranges -= 1; // range() will count itself
        self.range(lo, hi).await
    }

    async fn range_attempt(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, u64)>, ()> {
        let meta = self.read_meta().await;
        let Some(root) = meta.root else {
            return Ok(Vec::new());
        };
        // Descend to the leaf covering `lo`.
        let mut id = root;
        let mut level = meta.height - 1;
        loop {
            let node = self.read_node(id).await?;
            if node.level != level {
                return Err(());
            }
            sleep(self.cfg.client_node_visit).await;
            if node.is_leaf() {
                break;
            }
            let idx = node.keys.partition_point(|k| *k <= lo);
            id = node.children()[idx];
            level -= 1;
        }
        // Walk the leaf chain.
        let mut out = Vec::new();
        let mut cursor = Some(id);
        let mut hops = 0u32;
        while let Some(id) = cursor {
            let node = self.read_node(id).await?;
            if !node.is_leaf() {
                return Err(());
            }
            sleep(self.cfg.client_node_visit).await;
            for (i, &k) in node.keys.iter().enumerate() {
                if k > hi {
                    return Ok(out);
                }
                if k >= lo {
                    out.push((k, node.values()[i]));
                }
            }
            cursor = node.next;
            hops += 1;
            if hops > 1_000_000 {
                return Err(()); // defensive: a corrupted chain must not loop forever
            }
        }
        Ok(out)
    }

    /// All pairs with `lo <= key <= hi`, served by the server.
    pub async fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.drain_pending();
        self.stats.ranges += 1;
        self.seq += 1;
        let seq = self.seq;
        self.ch
            .tx
            .send(&KvMessage::RangeReq { seq, lo, hi }.encode(), seq)
            .await;
        let mut out = Vec::new();
        loop {
            let bytes = self.ch.rx.wait_message().await;
            match KvMessage::decode(&bytes) {
                Ok(KvMessage::Heartbeat { util_permille }) => {
                    self.adaptive
                        .note_heartbeat(f64::from(util_permille) / 1000.0);
                }
                Ok(KvMessage::RespCont { seq: s, entries }) if s == seq => out.extend(entries),
                Ok(KvMessage::RespEnd {
                    seq: s, entries, ..
                }) if s == seq => {
                    out.extend(entries);
                    return out;
                }
                _ => {}
            }
        }
    }

    async fn fast_get(&mut self, key: u64) -> Option<u64> {
        self.seq += 1;
        let seq = self.seq;
        self.ch
            .tx
            .send(&KvMessage::GetReq { seq, key }.encode(), seq)
            .await;
        let (status, entries) = self.wait_end(seq).await;
        (status == 1).then(|| entries[0].1)
    }

    async fn wait_end(&mut self, seq: u32) -> (u32, Vec<(u64, u64)>) {
        loop {
            let bytes = self.ch.rx.wait_message().await;
            match KvMessage::decode(&bytes) {
                Ok(KvMessage::Heartbeat { util_permille }) => {
                    self.adaptive
                        .note_heartbeat(f64::from(util_permille) / 1000.0);
                }
                Ok(KvMessage::RespEnd {
                    seq: s,
                    entries,
                    status,
                }) if s == seq => return (status, entries),
                _ => {}
            }
        }
    }

    /// One-sided lookup with version validation; falls back to the ring
    /// after repeated inconsistencies.
    async fn offload_get(&mut self, key: u64) -> Option<u64> {
        for _ in 0..8 {
            match self.offload_attempt(key).await {
                Ok(found) => return found,
                Err(()) => {
                    self.stats.restarts += 1;
                    self.meta_cache = None;
                }
            }
        }
        self.fast_get(key).await
    }

    async fn offload_attempt(&mut self, key: u64) -> Result<Option<u64>, ()> {
        let meta = self.read_meta().await;
        let Some(root) = meta.root else {
            return Ok(None);
        };
        let mut id = root;
        let mut level = meta.height - 1;
        loop {
            let node = self.read_node(id).await?;
            if node.level != level {
                return Err(());
            }
            sleep(self.cfg.client_node_visit).await;
            if node.is_leaf() {
                return Ok(match node.keys.binary_search(&key) {
                    Ok(i) => Some(node.values()[i]),
                    Err(_) => None,
                });
            }
            let idx = node.keys.partition_point(|k| *k <= key);
            id = node.children()[idx];
            level -= 1;
        }
    }

    async fn read_node(&mut self, id: NodeId) -> Result<BpNode, ()> {
        let mut retries = 0;
        loop {
            let bytes = self
                .ch
                .qp
                .read(
                    self.tree.rkey,
                    self.tree.layout.node_offset(id),
                    self.tree.layout.chunk_bytes(),
                )
                .await
                .expect("kv arena registered");
            match self.tree.layout.decode_node(&bytes) {
                Ok((node, _)) => return Ok(node),
                Err(CodecError::TornRead { .. }) => {
                    self.stats.torn_retries += 1;
                    retries += 1;
                    if retries > self.cfg.max_read_retries {
                        return Err(());
                    }
                }
                Err(CodecError::Malformed(_)) => return Err(()),
            }
        }
    }

    async fn read_meta(&mut self) -> catfish_rtree::TreeMeta {
        let t = now();
        if let Some((m, at)) = self.meta_cache {
            if t.saturating_duration_since(at) <= self.cfg.meta_cache_ttl {
                return m;
            }
        }
        loop {
            let bytes = self
                .ch
                .qp
                .read(self.tree.rkey, 0, self.tree.layout.chunk_bytes())
                .await
                .expect("kv arena registered");
            match decode_meta(&self.tree.layout, &bytes) {
                Ok((m, _)) => {
                    self.meta_cache = Some((m, now()));
                    return m;
                }
                Err(CodecError::TornRead { .. }) => {
                    self.stats.torn_retries += 1;
                }
                Err(CodecError::Malformed(what)) => panic!("corrupt kv meta: {what}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catfish_rdma::profile::infiniband_100g;
    use catfish_rdma::RdmaProfile;
    use catfish_simnet::Sim;

    fn build(items: Vec<(u64, u64)>) -> (Network, KvServer) {
        let net = Network::new();
        let profile = infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let server = KvServer::build(
            &net,
            &profile,
            ServerConfig {
                cores: 4,
                mode: ServerMode::EventDriven,
                ..ServerConfig::default()
            },
            BpConfig::with_max_keys(32),
            items,
            &rkeys,
        );
        (net, server)
    }

    fn attach(net: &Network, server: &KvServer, mode: AccessMode, seed: u64) -> KvClient {
        let profile = infiniband_100g();
        let ep = Endpoint::new(net, net.add_node(profile.link), RdmaProfile::default());
        let ch = server.accept(&ep);
        KvClient::new(
            ch,
            server.tree_handle(),
            ClientConfig {
                mode,
                ..ClientConfig::default()
            },
            seed,
        )
    }

    fn items(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i * 7 % (n * 4), i)).collect()
    }

    #[test]
    fn kv_message_round_trips() {
        for msg in [
            KvMessage::GetReq { seq: 1, key: 42 },
            KvMessage::PutReq {
                seq: 2,
                key: 1,
                value: 2,
            },
            KvMessage::RemoveReq { seq: 3, key: 9 },
            KvMessage::RangeReq {
                seq: 4,
                lo: 5,
                hi: 50,
            },
            KvMessage::RespCont {
                seq: 5,
                entries: vec![(1, 2), (3, 4)],
            },
            KvMessage::RespEnd {
                seq: 6,
                entries: vec![(7, 8)],
                status: 1,
            },
            KvMessage::Heartbeat { util_permille: 999 },
        ] {
            assert_eq!(KvMessage::decode(&msg.encode()).unwrap(), msg);
        }
        assert!(KvMessage::decode(&[]).is_err());
        assert!(KvMessage::decode(&[200, 1]).is_err());
    }

    #[test]
    fn fast_path_get_put_remove_range() {
        let sim = Sim::new();
        sim.run_until(async {
            let (net, server) = build(items(1_000));
            let mut c = attach(&net, &server, AccessMode::FastMessaging, 1);
            assert_eq!(c.get(7).await, Some(1));
            assert_eq!(c.get(4_000_001).await, None);
            assert_eq!(c.put(7, 999).await, Some(1));
            assert_eq!(c.get(7).await, Some(999));
            assert_eq!(c.remove(7).await, Some(999));
            assert_eq!(c.get(7).await, None);
            let r = c.range(0, 100).await;
            let expect = server.with_tree(|t| t.range(0, 100));
            assert_eq!(r, expect);
            assert!(!r.is_empty());
        });
    }

    #[test]
    fn offloaded_gets_match_fast_gets() {
        let sim = Sim::new();
        sim.run_until(async {
            let (net, server) = build(items(5_000));
            let mut off = attach(&net, &server, AccessMode::Offloading, 2);
            let mut fast = attach(&net, &server, AccessMode::FastMessaging, 3);
            for probe in 0..300u64 {
                let key = probe * 61 % 20_000;
                assert_eq!(off.get(key).await, fast.get(key).await, "key {key}");
            }
            assert_eq!(off.stats().offloaded_gets, 300);
            assert_eq!(fast.stats().fast_gets, 300);
        });
    }

    #[test]
    fn offloaded_gets_survive_concurrent_puts() {
        let sim = Sim::new();
        sim.run_until(async {
            let (net, server) = build(items(3_000));
            let mut writer = attach(&net, &server, AccessMode::FastMessaging, 4);
            let w = spawn(async move {
                for i in 0..2_000u64 {
                    writer.put(1_000_000 + i, i).await;
                }
            });
            let mut reader = attach(&net, &server, AccessMode::Offloading, 5);
            for probe in 0..200u64 {
                let key = probe * 7 % 12_000;
                // Pre-loaded keys must always resolve to their value.
                let expect = if key % 7 == 0 && key / 7 < 3_000 {
                    Some(key / 7)
                } else {
                    None
                };
                // Keys in the writer's range may or may not be visible yet;
                // skip them in the assertion.
                if key < 1_000_000 {
                    assert_eq!(reader.get(key).await, expect, "key {key}");
                }
            }
            w.await;
        });
    }

    #[test]
    fn adaptive_mode_works_end_to_end() {
        let sim = Sim::new();
        sim.run_until(async {
            let (net, server) = build(items(2_000));
            server.start_heartbeats();
            let mut c = attach(
                &net,
                &server,
                AccessMode::Adaptive(crate::config::AdaptiveParams::default()),
                6,
            );
            for probe in 0..100u64 {
                let key = probe * 7 % 8_000;
                let expect = server.with_tree(|t| t.get(key));
                assert_eq!(c.get(key).await, expect, "key {key}");
            }
            let s = c.stats();
            assert_eq!(s.fast_gets + s.offloaded_gets, 100);
        });
    }

    #[test]
    fn offloaded_range_matches_server_range() {
        let sim = Sim::new();
        sim.run_until(async {
            let (net, server) = build((0..4_000u64).map(|i| (i * 3, i)).collect());
            let mut c = attach(&net, &server, AccessMode::Offloading, 11);
            for (lo, hi) in [
                (0u64, 100),
                (500, 2_000),
                (11_900, 12_100),
                (20_000, 30_000),
            ] {
                let off = c.range_offloaded(lo, hi).await;
                let srv = server.with_tree(|t| t.range(lo, hi));
                assert_eq!(off, srv, "range [{lo}, {hi}]");
            }
            // Server CPU untouched by offloaded ranges except connection setup.
            assert!(c.stats().ranges >= 4);
        });
    }

    #[test]
    fn offloaded_range_survives_concurrent_puts() {
        let sim = Sim::new();
        sim.run_until(async {
            let (net, server) = build((0..3_000u64).map(|i| (i * 4, i)).collect());
            let mut writer = attach(&net, &server, AccessMode::FastMessaging, 12);
            let w = spawn(async move {
                for i in 0..1_500u64 {
                    writer.put(i * 4 + 1, i).await; // interleave between existing keys
                }
            });
            let mut reader = attach(&net, &server, AccessMode::Offloading, 13);
            for probe in 0..50u64 {
                let lo = probe * 97 % 10_000;
                let out = reader.range_offloaded(lo, lo + 400).await;
                // Monotone, and all pre-loaded keys in range are present.
                assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "probe {probe}");
                for k in (0..12_000u64).step_by(4) {
                    if k >= lo && k <= lo + 400 {
                        assert!(
                            out.iter().any(|&(ok, _)| ok == k),
                            "probe {probe} lost pre-loaded key {k}"
                        );
                    }
                }
            }
            w.await;
        });
    }

    #[test]
    fn range_spans_many_segments() {
        let sim = Sim::new();
        sim.run_until(async {
            let net = Network::new();
            let profile = infiniband_100g();
            let rkeys = RkeyAllocator::new();
            let server = KvServer::build(
                &net,
                &profile,
                ServerConfig {
                    cores: 4,
                    mode: ServerMode::EventDriven,
                    response_segment_results: 50,
                    ..ServerConfig::default()
                },
                BpConfig::with_max_keys(32),
                (0..2_000u64).map(|i| (i, i * 2)).collect(),
                &rkeys,
            );
            let mut c = attach(&net, &server, AccessMode::FastMessaging, 7);
            let r = c.range(0, 1_999).await;
            assert_eq!(r.len(), 2_000);
            assert!(r.windows(2).all(|w| w[0].0 < w[1].0));
        });
    }
}
