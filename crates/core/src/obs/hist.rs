//! Streaming HDR-style latency histograms.
//!
//! [`LatencyHistogram`] replaces the unbounded sample `Vec` of
//! [`crate::stats::LatencyRecorder`] on every hot recording path: a fixed
//! 2 KB array of log-linear buckets (4 sub-buckets per power of two, so
//! any percentile estimate is within one bucket — ≤ 25% relative — of the
//! exact value, and far tighter at the small-count end), plus exact
//! `count`/`sum`/`min`/`max`. Recording is O(1), merging is element-wise
//! addition, and summaries never mutate the recorder.

use std::fmt;

use catfish_simnet::SimDuration;

use crate::stats::LatencySummary;

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 2;
/// Linear sub-buckets per power-of-two value range.
const SUB: u64 = 1 << SUB_BITS;
/// Values below this are counted in exact unit buckets.
const LINEAR_LIMIT: u64 = SUB * 2;
/// Total buckets: unit buckets + SUB per octave for octaves
/// `SUB_BITS + 1 ..= 63`.
const BUCKETS: usize = (LINEAR_LIMIT + (63 - SUB_BITS) as u64 * SUB) as usize;

/// Bucket index for a nanosecond value.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = (v >> (msb - SUB_BITS)) - SUB;
    (LINEAR_LIMIT + u64::from(msb - SUB_BITS - 1) * SUB + sub) as usize
}

/// Inclusive lower bound of a bucket, in nanoseconds.
fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_LIMIT {
        return idx;
    }
    let j = idx - LINEAR_LIMIT;
    let octave = SUB_BITS + 1 + (j / SUB) as u32;
    let sub = j % SUB;
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

/// Exclusive upper bound of a bucket, in nanoseconds.
fn bucket_high(idx: usize) -> u64 {
    if (idx as u64) < LINEAR_LIMIT {
        return idx as u64 + 1;
    }
    let j = idx as u64 - LINEAR_LIMIT;
    let octave = SUB_BITS + 1 + (j / SUB) as u32;
    bucket_low(idx) + (1u64 << (octave - SUB_BITS))
}

/// A mergeable, fixed-footprint latency histogram over nanosecond spans.
///
/// # Examples
///
/// ```
/// use catfish_core::obs::LatencyHistogram;
/// use catfish_simnet::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for i in 1..=100u64 {
///     h.record(SimDuration::from_micros(i));
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 100);
/// assert_eq!(s.mean, SimDuration::from_nanos(50_500)); // sum/count: exact
/// assert_eq!(s.min, SimDuration::from_micros(1));
/// assert_eq!(s.max, SimDuration::from_micros(100));
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min_ns", &self.min)
            .field("max_ns", &self.max)
            .finish()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample. O(1), no allocation.
    pub fn record(&mut self, latency: SimDuration) {
        self.record_nanos(latency.as_nanos());
    }

    /// Records a raw nanosecond value.
    pub fn record_nanos(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum += u128::from(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds every bucket of `other` into this histogram. A merged
    /// histogram is bucket-for-bucket identical to one that recorded the
    /// concatenated sample streams.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The quantile `q` in `[0, 1]`, estimated as the upper edge of the
    /// bucket holding the rank — within one bucket width of the exact
    /// sorted-sample quantile, and clamped to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        // Same rank convention as the exact recorder:
        // index = floor((n - 1) * q) into the sorted samples.
        let rank = ((self.count as f64 - 1.0) * q.clamp(0.0, 1.0)).floor() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                let est = bucket_high(idx).saturating_sub(1);
                return SimDuration::from_nanos(est.clamp(self.min, self.max));
            }
        }
        SimDuration::from_nanos(self.max)
    }

    /// Exact arithmetic mean (sum and count are tracked exactly).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum / u128::from(self.count)) as u64)
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.min)
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max)
    }

    /// Full summary; `&self` — summarizing never disturbs the recorder.
    pub fn summary(&self) -> LatencySummary {
        if self.count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: self.count as usize,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            min: self.min(),
            max: self.max(),
        }
    }

    /// Iterates the non-empty buckets as `(low_ns, high_ns, count)` with
    /// `high` exclusive — the exposition layer's view for Prometheus
    /// bucket lines and JSONL dumps.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), bucket_high(i), c))
    }

    /// Total of all recorded values, in nanoseconds.
    pub fn sum_nanos(&self) -> u128 {
        self.sum
    }

    /// The width of the bucket that `v` falls into, in nanoseconds — the
    /// quantile estimation error bound at that magnitude.
    pub fn bucket_width_at(v: u64) -> u64 {
        let idx = bucket_index(v);
        bucket_high(idx) - bucket_low(idx)
    }

    /// Estimated fraction of samples strictly above `threshold` — the
    /// numerator of an SLO latency burn rate. Buckets entirely above the
    /// threshold count fully; the straddling bucket is pro-rated by the
    /// portion of its value range above the threshold (a uniform-within-
    /// bucket assumption, so the estimate is within one bucket of exact).
    pub fn fraction_above(&self, threshold: SimDuration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let t = threshold.as_nanos();
        let mut above = 0.0f64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = bucket_low(idx);
            if lo > t {
                above += c as f64;
                continue;
            }
            let hi = bucket_high(idx); // exclusive: values span [lo, hi - 1]
            if hi - 1 > t {
                let frac = (hi - 1 - t) as f64 / (hi - lo) as f64;
                above += c as f64 * frac.clamp(0.0, 1.0);
            }
        }
        (above / self.count as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_is_about_two_kilobytes() {
        // 8 unit buckets + 4 sub-buckets × 61 octaves = 252 buckets.
        assert_eq!(BUCKETS, 252);
        assert_eq!(BUCKETS * std::mem::size_of::<u64>(), 2016);
        assert!(std::mem::size_of::<LatencyHistogram>() <= 2112);
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every bucket's high equals the next bucket's low, starting at 0.
        assert_eq!(bucket_low(0), 0);
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_high(i), bucket_low(i + 1), "bucket {i}");
        }
        // Probe values land in buckets that contain them.
        for v in [
            0u64,
            1,
            7,
            8,
            9,
            100,
            1_000,
            123_456,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index in range for {v}");
            assert!(bucket_low(idx) <= v, "low({idx}) <= {v}");
            if idx < BUCKETS - 1 {
                assert!(v < bucket_high(idx), "{v} < high({idx})");
            }
        }
    }

    #[test]
    fn empty_summary_is_default() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.summary(), LatencySummary::default());
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn small_exact_values_are_exact() {
        // Values < 8 ns live in unit buckets: quantiles are exact.
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7] {
            h.record_nanos(v);
        }
        assert_eq!(h.quantile(0.0), SimDuration::from_nanos(1));
        assert_eq!(h.quantile(1.0), SimDuration::from_nanos(7));
        assert_eq!(h.quantile(0.5), SimDuration::from_nanos(4));
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(10));
        h.record(SimDuration::from_micros(30));
        assert_eq!(h.mean(), SimDuration::from_micros(20));
        assert_eq!(h.min(), SimDuration::from_micros(10));
        assert_eq!(h.max(), SimDuration::from_micros(30));
    }

    #[test]
    fn quantile_within_one_bucket_of_exact() {
        let mut h = LatencyHistogram::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut x = 17u64;
        for _ in 0..10_000 {
            // Deterministic LCG spread over ~6 decades.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % 1_000_000_000;
            h.record_nanos(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let want = exact[((exact.len() as f64 - 1.0) * q).floor() as usize];
            let got = h.quantile(q).as_nanos();
            let width = LatencyHistogram::bucket_width_at(want);
            assert!(
                got.abs_diff(want) <= width,
                "q{q}: got {got}, exact {want}, width {width}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 733 + 5;
            if i % 2 == 0 {
                a.record_nanos(v);
            } else {
                b.record_nanos(v);
            }
            c.record_nanos(v);
        }
        a.merge(&b);
        assert_eq!(a.counts, c.counts);
        assert_eq!(a.summary(), c.summary());
    }

    #[test]
    fn fraction_above_tracks_exact_tail() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 µs, uniformly: exactly 10% of samples are above 900 µs.
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        for (thresh_us, want) in [(0u64, 1.0f64), (500, 0.5), (900, 0.1), (1000, 0.0)] {
            let got = h.fraction_above(SimDuration::from_micros(thresh_us));
            // Bucketed estimate: within one bucket's worth of samples.
            assert!(
                (got - want).abs() < 0.15,
                "above {thresh_us}us: got {got}, want {want}"
            );
        }
        assert_eq!(h.fraction_above(SimDuration::from_secs(10)), 0.0);
        assert_eq!(
            LatencyHistogram::new().fraction_above(SimDuration::ZERO),
            0.0
        );
    }

    #[test]
    fn nonzero_buckets_cover_all_counts() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_nanos(i * 997);
        }
        let total: u64 = h.nonzero_buckets().map(|(_, _, c)| c).sum();
        assert_eq!(total, 1000);
        // Buckets come out in increasing, non-overlapping order.
        let edges: Vec<(u64, u64)> = h.nonzero_buckets().map(|(l, h, _)| (l, h)).collect();
        assert!(edges.windows(2).all(|w| w[0].1 <= w[1].0));
    }
}
