//! Observability: phase-level span tracing, distributed request tracing,
//! streaming latency histograms, adaptive-decision event timelines,
//! flight recording, SLO evaluation, and metrics exposition.
//!
//! The module splits along the concerns of the observability layer:
//!
//! * [`hist`] — [`LatencyHistogram`], the fixed-footprint log-bucketed
//!   recorder behind every distribution here;
//! * [`span`] — [`Phase`] taxonomy and the [`TraceSink`] handle threaded
//!   through `ServiceClient`/`ServiceServer`/ring endpoints (no-op when
//!   the `trace` feature is off);
//! * [`trace`] — the wire-propagated [`TraceContext`] envelope header and
//!   the [`SpanLog`] of causally linked [`SpanRecord`]s (log no-op when
//!   the `trace` feature is off; the context type is always compiled);
//! * [`assembly`] — [`TraceAssembler`], stitching span records into
//!   per-request trace trees with JSONL and Chrome `trace_event` export;
//! * [`flight`] — [`FlightRecorder`], the always-on per-connection ring
//!   of recent protocol events, auto-dumped on anomalies;
//! * [`slo`] — [`SloSpec`]/[`SloReport`], declared latency/throughput/
//!   error-budget objectives evaluated with burn rates;
//! * [`events`] — [`AdaptiveEventLog`], the structured Algorithm 1
//!   decision timeline;
//! * [`registry`] — [`MetricsRegistry`], snapshotting everything to
//!   Prometheus text and JSONL.
//!
//! See `DESIGN.md §11` for the span taxonomy and bucketing scheme, and
//! `DESIGN.md §16` for the distributed-tracing layer.

pub mod assembly;
pub mod events;
pub mod flight;
pub mod hist;
pub mod registry;
pub mod slo;
pub mod span;
pub mod trace;

pub use assembly::{Assembly, TraceAssembler, TraceTree};
pub use events::{AdaptiveEvent, AdaptiveEventLog, AdaptiveEventRecord, RouteChoice};
pub use flight::{Anomaly, FlightDump, FlightEntry, FlightEvent, FlightRecorder, FLIGHT_RING};
pub use hist::LatencyHistogram;
pub use registry::{Metric, MetricValue, MetricsRegistry};
pub use slo::{SloObjective, SloReport, SloSpec};
pub use span::{Phase, PhaseSummary, SpanStart, TraceSink, N_PHASES};
pub use trace::{
    SpanKind, SpanLog, SpanRecord, TraceContext, SERVER_NODE_BASE, TRACE_CTX_WIRE_BYTES,
    TRACE_FLAG_BATCHED, TRACE_FLAG_FETCH, TRACE_FLAG_RETRANSMIT,
};
