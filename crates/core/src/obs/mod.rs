//! Observability: phase-level span tracing, streaming latency
//! histograms, adaptive-decision event timelines, and metrics
//! exposition.
//!
//! The module splits along the four concerns of the observability layer:
//!
//! * [`hist`] — [`LatencyHistogram`], the fixed-footprint log-bucketed
//!   recorder behind every distribution here;
//! * [`span`] — [`Phase`] taxonomy and the [`TraceSink`] handle threaded
//!   through `ServiceClient`/`ServiceServer`/ring endpoints (no-op when
//!   the `trace` feature is off);
//! * [`events`] — [`AdaptiveEventLog`], the structured Algorithm 1
//!   decision timeline;
//! * [`registry`] — [`MetricsRegistry`], snapshotting everything to
//!   Prometheus text and JSONL.
//!
//! See `DESIGN.md §11` for the span taxonomy and bucketing scheme.

pub mod events;
pub mod hist;
pub mod registry;
pub mod span;

pub use events::{AdaptiveEvent, AdaptiveEventLog, AdaptiveEventRecord, RouteChoice};
pub use hist::LatencyHistogram;
pub use registry::{Metric, MetricValue, MetricsRegistry};
pub use span::{Phase, PhaseSummary, SpanStart, TraceSink, N_PHASES};
