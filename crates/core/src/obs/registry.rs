//! Metrics exposition: snapshotting counters, gauges, and histograms to
//! Prometheus text format and JSONL.
//!
//! A [`MetricsRegistry`] is a write-once snapshot, not a live registry:
//! the harness builds one from a finished
//! [`RunResult`](crate::harness::RunResult) (`RunResult::metrics`) and
//! bench binaries dump it behind
//! `--metrics-out BASE`, producing `BASE.prom` (Prometheus text
//! exposition format 0.0.4) and `BASE.jsonl` (one metric per line).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use super::hist::LatencyHistogram;

/// A metric value: monotonic counter, instantaneous gauge, or latency
/// histogram.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Point-in-time measurement (utilization, throughput, ...).
    Gauge(f64),
    /// A latency distribution (exposed in seconds, Prometheus-style).
    /// Boxed: the histogram's fixed 2 KB of buckets would otherwise
    /// dominate every variant of the enum.
    Histogram(Box<LatencyHistogram>),
}

/// One named metric with help text.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric name (`snake_case`, no catfish_ prefix required — the
    /// exposition methods add none).
    pub name: String,
    /// One-line description emitted as `# HELP`.
    pub help: String,
    /// The value.
    pub value: MetricValue,
}

/// An ordered collection of metrics ready for exposition.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: MetricValue::Counter(value),
        });
        self
    }

    /// Adds a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: MetricValue::Gauge(value),
        });
        self
    }

    /// Adds a histogram snapshot.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &LatencyHistogram) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: MetricValue::Histogram(Box::new(hist.clone())),
        });
        self
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metrics were registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The registered metrics, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Renders the registry in Prometheus text exposition format.
    ///
    /// Histograms become cumulative `_bucket{le="..."}` series over the
    /// non-empty log-linear buckets (upper edges in **seconds**), plus
    /// `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {} counter", m.name);
                    let _ = writeln!(out, "{} {}", m.name, v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    let _ = writeln!(out, "{} {}", m.name, fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", m.name);
                    let mut cumulative = 0u64;
                    for (_, high_ns, count) in h.nonzero_buckets() {
                        cumulative += count;
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {}",
                            m.name,
                            fmt_f64(high_ns as f64 * 1e-9),
                            cumulative
                        );
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.len());
                    let _ = writeln!(
                        out,
                        "{}_sum {}",
                        m.name,
                        fmt_f64(h.sum_nanos() as f64 * 1e-9)
                    );
                    let _ = writeln!(out, "{}_count {}", m.name, h.len());
                }
            }
        }
        out
    }

    /// Renders the registry as JSONL: one metric object per line.
    /// Histogram lines carry the summary percentiles (nanoseconds) and
    /// the non-empty buckets.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"type\":\"counter\",\"value\":{}}}",
                        m.name, v
                    );
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"type\":\"gauge\",\"value\":{}}}",
                        m.name,
                        fmt_f64(*v)
                    );
                }
                MetricValue::Histogram(h) => {
                    let s = h.summary();
                    let mut buckets = String::new();
                    for (low, high, count) in h.nonzero_buckets() {
                        if !buckets.is_empty() {
                            buckets.push(',');
                        }
                        let _ = write!(buckets, "[{low},{high},{count}]");
                    }
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"type\":\"histogram\",\"count\":{},\
                         \"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\
                         \"p999_ns\":{},\"max_ns\":{},\"buckets\":[{}]}}",
                        m.name,
                        s.count,
                        s.mean.as_nanos(),
                        s.p50.as_nanos(),
                        s.p90.as_nanos(),
                        s.p99.as_nanos(),
                        s.p999.as_nanos(),
                        s.max.as_nanos(),
                        buckets
                    );
                }
            }
        }
        out
    }

    /// Writes `<base>.prom` and `<base>.jsonl` next to each other.
    /// Returns the two paths written.
    pub fn write_files(&self, base: &str) -> io::Result<(String, String)> {
        let prom = format!("{base}.prom");
        let jsonl = format!("{base}.jsonl");
        std::fs::write(Path::new(&prom), self.to_prometheus())?;
        std::fs::write(Path::new(&jsonl), self.to_jsonl())?;
        Ok((prom, jsonl))
    }
}

/// Formats an f64 without scientific notation surprises: plain decimal,
/// trimmed trailing zeros (Prometheus accepts any float syntax, but the
/// output stays grep-friendly).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        let s = format!("{v:.9}");
        let s = s.trim_end_matches('0');
        let s = s.strip_suffix('.').unwrap_or(s);
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catfish_simnet::SimDuration;

    #[test]
    fn prometheus_counter_and_gauge_lines() {
        let mut reg = MetricsRegistry::new();
        reg.counter("catfish_requests_total", "Completed requests.", 42)
            .gauge("catfish_server_cpu", "Mean server CPU utilization.", 0.25);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE catfish_requests_total counter"));
        assert!(text.contains("catfish_requests_total 42"));
        assert!(text.contains("# TYPE catfish_server_cpu gauge"));
        assert!(text.contains("catfish_server_cpu 0.25"));
        assert!(text.contains("# HELP catfish_requests_total Completed requests."));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_and_ends_at_inf() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(10));
        h.record(SimDuration::from_micros(10));
        h.record(SimDuration::from_millis(1));
        let mut reg = MetricsRegistry::new();
        reg.histogram("catfish_latency_seconds", "Op latency.", &h);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE catfish_latency_seconds histogram"));
        assert!(text.contains("catfish_latency_seconds_count 3"));
        assert!(text.contains("catfish_latency_seconds_bucket{le=\"+Inf\"} 3"));
        // Bucket counts are cumulative: the 10us bucket holds 2, the
        // 1ms bucket line reads 3.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.contains("_bucket{le=") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts, vec![2, 3]);
    }

    #[test]
    fn jsonl_one_line_per_metric() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(5));
        let mut reg = MetricsRegistry::new();
        reg.counter("a_total", "A.", 1)
            .gauge("b", "B.", 1.5)
            .histogram("c_ns", "C.", &h);
        let jsonl = reg.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"counter\""));
        assert!(lines[1].contains("\"value\":1.5"));
        assert!(lines[2].contains("\"type\":\"histogram\""));
        assert!(lines[2].contains("\"count\":1"));
        assert!(lines[2].contains("\"buckets\":[["));
    }

    #[test]
    fn write_files_produces_both_formats() {
        let dir = std::env::temp_dir().join("catfish_obs_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("run").to_string_lossy().into_owned();
        let mut reg = MetricsRegistry::new();
        reg.counter("x_total", "X.", 7);
        let (prom, jsonl) = reg.write_files(&base).unwrap();
        assert!(std::fs::read_to_string(&prom)
            .unwrap()
            .contains("x_total 7"));
        assert!(std::fs::read_to_string(&jsonl)
            .unwrap()
            .contains("\"name\":\"x_total\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
