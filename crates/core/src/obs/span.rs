//! Phase-level span timing for the service core.
//!
//! A [`TraceSink`] is a cheap, cloneable handle that the client, server,
//! and ring endpoints share. Each instrumented region brackets itself with
//! [`TraceSink::begin`] / [`TraceSink::end`], attributing the elapsed
//! *virtual* time to one [`Phase`]; spans therefore never perturb the
//! simulation — tracing a run cannot change its outcome.
//!
//! With the `trace` cargo feature disabled, `TraceSink` and
//! [`SpanStart`] are zero-sized and every method is an empty inline
//! function: all call sites compile to no-ops (the `obs_overhead` bench
//! verifies the throughput delta stays under 5%).

#[cfg(feature = "trace")]
use std::cell::RefCell;
use std::fmt;
#[cfg(feature = "trace")]
use std::rc::Rc;

use catfish_simnet::SimDuration;
#[cfg(feature = "trace")]
use catfish_simnet::{try_now, SimTime};

use super::hist::LatencyHistogram;
use crate::stats::LatencySummary;

/// A traced phase of a Catfish request — the span taxonomy.
///
/// The first six phases tile the fast-messaging round trip end to end;
/// the offload phases attribute the client-direct RDMA path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Client-side ring reservation, payload copy, and doorbell write —
    /// up to the moment the request frame is delivered remotely.
    RingEnqueue,
    /// Client waiting on its completion queue for the response doorbell.
    CqWait,
    /// Request sitting in the server's ring between NIC delivery
    /// (`Completion.at`) and the worker picking it up.
    ServerQueue,
    /// Server-side frame decode plus the dispatch CPU charge.
    Dispatch,
    /// Index execution (tree/map traversal) plus its modeled CPU cost.
    IndexExec,
    /// Response post charge and ring transit back to the client.
    RespTransit,
    /// Client metadata chunk refresh over one-sided reads.
    MetaRead,
    /// One full offloaded traversal, including any retries.
    OffloadRead,
    /// Extra time an offloaded traversal spent beyond its first attempt
    /// (version-retry and restart cost).
    OffloadRetry,
    /// Client time spent backing off between retransmission attempts of
    /// a timed-out fast-messaging request.
    RetryBackoff,
    /// Client time spent pulling a deposited response out of the server's
    /// mailbox with one-sided reads (header polls, payload read, CRC
    /// validation, and ack), from request send to decoded response.
    MailboxFetch,
}

/// Number of phases (sizes the per-sink histogram array).
pub const N_PHASES: usize = 11;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; N_PHASES] = [
        Phase::RingEnqueue,
        Phase::CqWait,
        Phase::ServerQueue,
        Phase::Dispatch,
        Phase::IndexExec,
        Phase::RespTransit,
        Phase::MetaRead,
        Phase::OffloadRead,
        Phase::OffloadRetry,
        Phase::RetryBackoff,
        Phase::MailboxFetch,
    ];

    /// Stable snake_case name used in metric names and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::RingEnqueue => "ring_enqueue",
            Phase::CqWait => "cq_wait",
            Phase::ServerQueue => "server_queue",
            Phase::Dispatch => "dispatch",
            Phase::IndexExec => "index_exec",
            Phase::RespTransit => "resp_transit",
            Phase::MetaRead => "meta_read",
            Phase::OffloadRead => "offload_read",
            Phase::OffloadRetry => "offload_retry",
            Phase::RetryBackoff => "retry_backoff",
            Phase::MailboxFetch => "mailbox_fetch",
        }
    }

    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    fn index(self) -> usize {
        match self {
            Phase::RingEnqueue => 0,
            Phase::CqWait => 1,
            Phase::ServerQueue => 2,
            Phase::Dispatch => 3,
            Phase::IndexExec => 4,
            Phase::RespTransit => 5,
            Phase::MetaRead => 6,
            Phase::OffloadRead => 7,
            Phase::OffloadRetry => 8,
            Phase::RetryBackoff => 9,
            Phase::MailboxFetch => 10,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An opaque span start token returned by [`TraceSink::begin`].
///
/// Feature-off it is zero-sized, so holding one across an `.await` (as
/// the response-transit span does) costs nothing in untraced builds.
#[derive(Debug, Clone, Copy)]
#[must_use = "pass the token back to TraceSink::end to record the span"]
pub struct SpanStart {
    #[cfg(feature = "trace")]
    at: SimTime,
}

/// Shared recorder of per-phase latency histograms.
///
/// Cloning a sink shares the underlying histograms (feature-on it is an
/// `Rc`), so the client, its ring sender, and the server-side receiver
/// all funnel into one set of per-phase distributions.
#[derive(Clone, Default)]
pub struct TraceSink {
    #[cfg(feature = "trace")]
    phases: Rc<RefCell<[LatencyHistogram; N_PHASES]>>,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &Self::enabled())
            .finish()
    }
}

impl TraceSink {
    /// Creates a sink with empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the `trace` feature is compiled in.
    pub const fn enabled() -> bool {
        cfg!(feature = "trace")
    }

    /// Captures the current virtual instant as a span start.
    #[inline]
    pub fn begin(&self) -> SpanStart {
        SpanStart {
            #[cfg(feature = "trace")]
            at: try_now().unwrap_or(SimTime::ZERO),
        }
    }

    /// Closes a span started by [`TraceSink::begin`], attributing the
    /// elapsed virtual time to `phase`.
    #[inline]
    pub fn end(&self, phase: Phase, start: SpanStart) {
        #[cfg(feature = "trace")]
        {
            let now = try_now().unwrap_or(SimTime::ZERO);
            self.phases.borrow_mut()[phase.index()].record(now.saturating_duration_since(start.at));
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (phase, start);
        }
    }

    /// Records an externally measured duration against `phase`.
    #[inline]
    pub fn record(&self, phase: Phase, span: SimDuration) {
        #[cfg(feature = "trace")]
        {
            self.phases.borrow_mut()[phase.index()].record(span);
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (phase, span);
        }
    }

    /// Snapshot of one phase's histogram; `None` when the phase recorded
    /// nothing (or tracing is compiled out).
    pub fn phase_histogram(&self, phase: Phase) -> Option<LatencyHistogram> {
        #[cfg(feature = "trace")]
        {
            let h = &self.phases.borrow()[phase.index()];
            if h.is_empty() {
                None
            } else {
                Some(h.clone())
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = phase;
            None
        }
    }

    /// Summaries of every phase that recorded at least one span, in
    /// [`Phase::ALL`] order.
    pub fn summaries(&self) -> Vec<PhaseSummary> {
        Phase::ALL
            .iter()
            .filter_map(|&p| {
                self.phase_histogram(p).map(|h| PhaseSummary {
                    phase: p,
                    summary: h.summary(),
                })
            })
            .collect()
    }

    /// Adds every phase histogram of `other` into this sink.
    pub fn merge(&self, other: &TraceSink) {
        #[cfg(feature = "trace")]
        {
            if Rc::ptr_eq(&self.phases, &other.phases) {
                return;
            }
            let theirs = other.phases.borrow();
            let mut ours = self.phases.borrow_mut();
            for (a, b) in ours.iter_mut().zip(theirs.iter()) {
                a.merge(b);
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = other;
        }
    }
}

/// One phase's latency distribution, snapshotted for reporting.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSummary {
    /// Which phase the summary describes.
    pub phase: Phase,
    /// The distribution summary for that phase.
    pub summary: LatencySummary,
}

impl fmt::Display for PhaseSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>13}: {}", self.phase.name(), self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_match_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_PHASES);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn spans_accumulate_virtual_time() {
        use catfish_simnet::{sleep, Sim};
        let sim = Sim::new();
        sim.run_until(async {
            let sink = TraceSink::new();
            let start = sink.begin();
            sleep(SimDuration::from_micros(7)).await;
            sink.end(Phase::Dispatch, start);
            let h = sink.phase_histogram(Phase::Dispatch).unwrap();
            assert_eq!(h.len(), 1);
            assert_eq!(h.max(), SimDuration::from_micros(7));
            assert!(sink.phase_histogram(Phase::CqWait).is_none());
        });
    }

    #[cfg(feature = "trace")]
    #[test]
    fn clones_share_histograms() {
        let sink = TraceSink::new();
        let other = sink.clone();
        other.record(Phase::IndexExec, SimDuration::from_micros(3));
        assert_eq!(sink.phase_histogram(Phase::IndexExec).unwrap().len(), 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn merge_is_self_safe_and_additive() {
        let a = TraceSink::new();
        a.record(Phase::CqWait, SimDuration::from_micros(1));
        let same = a.clone();
        a.merge(&same); // shared storage: must not double-count
        assert_eq!(a.phase_histogram(Phase::CqWait).unwrap().len(), 1);

        let b = TraceSink::new();
        b.record(Phase::CqWait, SimDuration::from_micros(2));
        a.merge(&b);
        assert_eq!(a.phase_histogram(Phase::CqWait).unwrap().len(), 2);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_sink_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<TraceSink>(), 0);
        assert_eq!(std::mem::size_of::<SpanStart>(), 0);
        let sink = TraceSink::new();
        let start = sink.begin();
        sink.end(Phase::Dispatch, start);
        sink.record(Phase::CqWait, SimDuration::from_micros(1));
        assert!(sink.phase_histogram(Phase::Dispatch).is_none());
        assert!(sink.summaries().is_empty());
    }
}
