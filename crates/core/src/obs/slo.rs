//! Declared service-level objectives evaluated as burn rates.
//!
//! A bench run's pass/fail criterion used to be an ad-hoc `assert!` per
//! bin. [`SloSpec`] makes the objective declarative — a latency quantile
//! bound, a throughput floor, an error budget — parsed from a compact
//! `--slo` string like `p99=500us,p50=100us,kops=50,budget=0.01`.
//! Evaluation against the run's [`LatencyHistogram`] and counters yields
//! an [`SloReport`] of per-objective **burn rates**: the ratio of
//! observed badness to allowed badness, where `burn <= 1` means the
//! objective holds. For a `p99 = 500µs` objective the allowed badness is
//! the 1% of requests permitted above the threshold, so
//! `burn = fraction_above(500µs) / 0.01`; a burn of 3.0 reads as "eating
//! the tail budget three times faster than allowed", which ranks
//! regressions by severity instead of a bare boolean.
//!
//! Bench bins turn a failing report into a nonzero exit status, making
//! BENCH_* baselines machine-checkable regression gates in CI.

use std::fmt;

use catfish_simnet::SimDuration;

use super::hist::LatencyHistogram;

/// A declared set of objectives for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloSpec {
    /// Median latency bound.
    pub p50: Option<SimDuration>,
    /// Tail (99th percentile) latency bound.
    pub p99: Option<SimDuration>,
    /// Throughput floor, in thousands of operations per second.
    pub min_kops: Option<f64>,
    /// Fraction of requests allowed to time out (error budget).
    pub error_budget: Option<f64>,
}

/// Parses a duration literal: integer + `ns`/`us`/`ms`/`s` suffix.
fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let (num, mult) = if let Some(v) = s.strip_suffix("ns") {
        (v, 1u64)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1_000)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1_000_000)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1_000_000_000)
    } else {
        return Err(format!("duration `{s}` needs a ns/us/ms/s suffix"));
    };
    let n: u64 = num
        .parse()
        .map_err(|_| format!("bad duration value `{s}`"))?;
    Ok(SimDuration::from_nanos(n * mult))
}

impl SloSpec {
    /// Parses the `--slo` flag syntax: comma-separated `key=value` pairs
    /// with keys `p50`, `p99` (durations), `kops` (float floor), `budget`
    /// (float fraction).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending pair.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec::default();
        for pair in s.split(',').filter(|p| !p.is_empty()) {
            let (key, val) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{pair}`"))?;
            match key.trim() {
                "p50" => spec.p50 = Some(parse_duration(val.trim())?),
                "p99" => spec.p99 = Some(parse_duration(val.trim())?),
                "kops" => {
                    spec.min_kops = Some(
                        val.trim()
                            .parse()
                            .map_err(|_| format!("bad kops value `{val}`"))?,
                    )
                }
                "budget" => {
                    let b: f64 = val
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad budget value `{val}`"))?;
                    if !(0.0..=1.0).contains(&b) {
                        return Err(format!("budget `{val}` must be in [0, 1]"));
                    }
                    spec.error_budget = Some(b);
                }
                other => return Err(format!("unknown SLO key `{other}`")),
            }
        }
        if spec == SloSpec::default() {
            return Err("empty SLO spec".into());
        }
        Ok(spec)
    }

    /// True if no objective is declared.
    pub fn is_empty(&self) -> bool {
        *self == SloSpec::default()
    }

    /// Evaluates the objectives against a run: the end-to-end latency
    /// histogram, achieved throughput in kops, and the error counters.
    pub fn evaluate(
        &self,
        latency: &LatencyHistogram,
        kops: f64,
        errors: u64,
        requests: u64,
    ) -> SloReport {
        let mut objectives = Vec::new();
        for (q, bound) in [(0.50, self.p50), (0.99, self.p99)] {
            let Some(t) = bound else { continue };
            // Allowed badness: the (1 - q) of requests permitted above t.
            let allowed = 1.0 - q;
            let actual = latency.fraction_above(t);
            objectives.push(SloObjective {
                name: format!("p{:02}<={}ns", (q * 100.0) as u32, t.as_nanos()),
                burn: actual / allowed,
                detail: format!(
                    "{:.4}% of requests above threshold (allowed {:.2}%), observed p{:02} {}ns",
                    actual * 100.0,
                    allowed * 100.0,
                    (q * 100.0) as u32,
                    latency.quantile(q).as_nanos()
                ),
            });
        }
        if let Some(floor) = self.min_kops {
            let burn = if kops > 0.0 {
                floor / kops
            } else {
                f64::INFINITY
            };
            objectives.push(SloObjective {
                name: format!("kops>={floor}"),
                burn,
                detail: format!("achieved {kops:.1} kops"),
            });
        }
        if let Some(budget) = self.error_budget {
            let rate = if requests > 0 {
                errors as f64 / requests as f64
            } else {
                0.0
            };
            let burn = if budget > 0.0 {
                rate / budget
            } else if rate > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            objectives.push(SloObjective {
                name: format!("errors<={budget}"),
                burn,
                detail: format!(
                    "{errors}/{requests} requests errored ({:.4}%)",
                    rate * 100.0
                ),
            });
        }
        SloReport { objectives }
    }
}

/// One evaluated objective.
#[derive(Debug, Clone)]
pub struct SloObjective {
    /// Objective label, e.g. `p99<=500000ns`.
    pub name: String,
    /// Observed badness / allowed badness; `<= 1` means the objective
    /// holds, `> 1` quantifies how badly it is violated.
    pub burn: f64,
    /// Human-readable evidence line.
    pub detail: String,
}

impl SloObjective {
    /// True if the objective holds.
    pub fn ok(&self) -> bool {
        self.burn <= 1.0
    }
}

/// The evaluated report: one row per declared objective.
#[derive(Debug, Clone, Default)]
pub struct SloReport {
    /// Evaluated objectives, in declaration order.
    pub objectives: Vec<SloObjective>,
}

impl SloReport {
    /// True if every objective holds.
    pub fn ok(&self) -> bool {
        self.objectives.iter().all(SloObjective::ok)
    }

    /// The worst (highest) burn rate across objectives; 0 when empty.
    pub fn max_burn(&self) -> f64 {
        self.objectives.iter().map(|o| o.burn).fold(0.0, f64::max)
    }
}

impl fmt::Display for SloReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for o in &self.objectives {
            writeln!(
                f,
                "slo {} {} burn {:.3} — {}",
                if o.ok() { "OK  " } else { "FAIL" },
                o.name,
                o.burn,
                o.detail
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist() -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        h
    }

    #[test]
    fn parse_round_trips_all_keys() {
        let spec = SloSpec::parse("p99=500us,p50=100us,kops=50,budget=0.01").unwrap();
        assert_eq!(spec.p99, Some(SimDuration::from_micros(500)));
        assert_eq!(spec.p50, Some(SimDuration::from_micros(100)));
        assert_eq!(spec.min_kops, Some(50.0));
        assert_eq!(spec.error_budget, Some(0.01));
        assert_eq!(
            SloSpec::parse("p99=2ms").unwrap().p99,
            Some(SimDuration::from_millis(2))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SloSpec::parse("").is_err());
        assert!(SloSpec::parse("p99=500").is_err()); // no suffix
        assert!(SloSpec::parse("p75=1ms").is_err()); // unknown key
        assert!(SloSpec::parse("budget=1.5").is_err()); // out of range
        assert!(SloSpec::parse("kops").is_err()); // no value
    }

    #[test]
    fn latency_burn_scales_with_tail_mass() {
        let h = uniform_hist();
        // p99 bound at 2ms: nothing above → burn 0, holds.
        let spec = SloSpec::parse("p99=2ms").unwrap();
        let rep = spec.evaluate(&h, 100.0, 0, 1000);
        assert!(rep.ok(), "{rep}");
        assert_eq!(rep.max_burn(), 0.0);
        // p99 bound at 500µs: ~50% above vs 1% allowed → burn ~50.
        let spec = SloSpec::parse("p99=500us").unwrap();
        let rep = spec.evaluate(&h, 100.0, 0, 1000);
        assert!(!rep.ok());
        assert!(rep.max_burn() > 10.0, "burn {}", rep.max_burn());
    }

    #[test]
    fn throughput_and_error_objectives() {
        let h = uniform_hist();
        let spec = SloSpec::parse("kops=50,budget=0.01").unwrap();
        // Meets both: 80 kops, 0 errors.
        assert!(spec.evaluate(&h, 80.0, 0, 10_000).ok());
        // Throughput floor violated: burn = 50/25 = 2.
        let rep = spec.evaluate(&h, 25.0, 0, 10_000);
        assert!(!rep.ok());
        assert!((rep.objectives[0].burn - 2.0).abs() < 1e-9);
        // Error budget violated: 5% errors vs 1% budget → burn 5.
        let rep = spec.evaluate(&h, 80.0, 500, 10_000);
        assert!(!rep.ok());
        assert!((rep.objectives[1].burn - 5.0).abs() < 1e-9);
        // Zero throughput is an infinite burn, not a divide-by-zero panic.
        assert!(spec.evaluate(&h, 0.0, 0, 0).objectives[0]
            .burn
            .is_infinite());
    }

    #[test]
    fn report_display_names_failures() {
        let h = uniform_hist();
        let spec = SloSpec::parse("p99=500us,kops=50").unwrap();
        let text = spec.evaluate(&h, 80.0, 0, 1000).to_string();
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("OK"), "{text}");
        assert!(text.contains("burn"), "{text}");
    }
}
