//! Distributed trace propagation: the wire-carried [`TraceContext`] and
//! the per-run [`SpanLog`] of causally linked spans.
//!
//! PR 4's [`super::TraceSink`] attributes virtual time to *phases* of one
//! process; it cannot say which shard executions belong to which client
//! request once a scatter-gather query fans out. This module adds the
//! missing causal layer:
//!
//! * [`TraceContext`] is a compact 17-byte envelope header (trace id,
//!   parent span id, hop flags) that both wire codecs carry inside a
//!   `Traced` message variant. It rides the request across every
//!   transport — ring write-back, mailbox fetch, and the write-back
//!   fallback of an offloaded read — and survives doorbell batching and
//!   PR 5 retransmissions unchanged, because the client wraps the request
//!   **once** before encoding and resends the same bytes.
//! * [`SpanLog`] is the shared recorder the client, server, and cluster
//!   layers stamp [`SpanRecord`]s into: client issue (root), per-shard
//!   RPC legs, server dispatch/index-exec (linked through the wire
//!   context), and the scatter-gather merge. [`super::assembly`] stitches
//!   the records back into per-request trees.
//!
//! `TraceContext` and `SpanRecord` are **always compiled** (the codec
//! round-trip tests run in both feature configurations); `SpanLog` follows
//! the [`super::TraceSink`] pattern and is a zero-sized no-op with the
//! `trace` feature off, so untraced builds never allocate an envelope.

#[cfg(feature = "trace")]
use std::cell::RefCell;
use std::fmt;
#[cfg(feature = "trace")]
use std::rc::Rc;

#[cfg(feature = "trace")]
use catfish_simnet::{try_now, SimTime};

/// Encoded size of a [`TraceContext`] on the wire: 8 (trace id) + 8
/// (parent span id) + 1 (flags).
pub const TRACE_CTX_WIRE_BYTES: usize = 17;

/// Hop flag: the request was coalesced into a doorbell batch frame.
pub const TRACE_FLAG_BATCHED: u8 = 1 << 0;
/// Hop flag: the request asked for the mailbox-fetch response path.
pub const TRACE_FLAG_FETCH: u8 = 1 << 1;
/// Hop flag: this encoding is a rebuilt retransmission (batch partial
/// retransmit re-encodes; single-frame retransmits resend the original
/// bytes and keep their original flags).
pub const TRACE_FLAG_RETRANSMIT: u8 = 1 << 2;

/// The wire-propagated tracing context: which request tree a hop belongs
/// to and which span caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Trace identifier — equal to the root span's id, unique per
    /// traced request within a run.
    pub trace_id: u64,
    /// Span id of the sender-side span that caused this hop; server-side
    /// spans attach here as children.
    pub parent_span: u64,
    /// Hop flags (`TRACE_FLAG_*`).
    pub flags: u8,
}

impl TraceContext {
    /// Appends the 17-byte wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.parent_span.to_le_bytes());
        out.push(self.flags);
    }

    /// Decodes a context from the first [`TRACE_CTX_WIRE_BYTES`] of
    /// `buf`; `None` when the buffer is too short.
    pub fn decode(buf: &[u8]) -> Option<TraceContext> {
        if buf.len() < TRACE_CTX_WIRE_BYTES {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_le_bytes(buf[0..8].try_into().expect("sized")),
            parent_span: u64::from_le_bytes(buf[8..16].try_into().expect("sized")),
            flags: buf[16],
        })
    }

    /// A copy of this context with `flag` set.
    pub fn with_flag(mut self, flag: u8) -> TraceContext {
        self.flags |= flag;
        self
    }
}

/// What a span measured — the taxonomy of the request tree.
///
/// A single-shard request is `Request → {Dispatch, IndexExec}`; a
/// scatter-gather request is `Request → Rpc (per shard) → {Dispatch,
/// IndexExec}` plus a `Merge` leaf; a fully offloaded read is
/// `Request → Offload` with no server spans at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// The whole client-visible operation (root span).
    Request,
    /// One per-shard leg of a scatter-gather operation.
    Rpc,
    /// Server-side frame dispatch charge (CQ poll, wakeup, decode).
    Dispatch,
    /// Server-side index execution of one request.
    IndexExec,
    /// Client-side merge of per-shard partial results.
    Merge,
    /// Client-side one-sided traversal (no server involvement).
    Offload,
}

impl SpanKind {
    /// Stable snake_case name used in JSONL output and the Chrome export.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Rpc => "rpc",
            SpanKind::Dispatch => "dispatch",
            SpanKind::IndexExec => "index_exec",
            SpanKind::Merge => "merge",
            SpanKind::Offload => "offload",
        }
    }

    /// Parses a stable name back into a kind (the `trace_tool` reader).
    pub fn from_name(name: &str) -> Option<SpanKind> {
        Some(match name {
            "request" => SpanKind::Request,
            "rpc" => SpanKind::Rpc,
            "dispatch" => SpanKind::Dispatch,
            "index_exec" => SpanKind::IndexExec,
            "merge" => SpanKind::Merge,
            "offload" => SpanKind::Offload,
            _ => return None,
        })
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One completed span, stamped with its tree position and virtual times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace the span belongs to (the root span's id).
    pub trace_id: u64,
    /// This span's id (unique within a run).
    pub span_id: u64,
    /// Parent span id; 0 marks a root.
    pub parent_span: u64,
    /// What the span measured.
    pub kind: SpanKind,
    /// Emitting node: client id for client-side spans, `SERVER_NODE_BASE
    /// + shard` for server-side spans.
    pub node: u32,
    /// Span start, nanoseconds of virtual time.
    pub start_ns: u64,
    /// Span end, nanoseconds of virtual time.
    pub end_ns: u64,
}

/// Node-id offset that marks a span as server-side: shard `s` emits spans
/// with `node = SERVER_NODE_BASE + s`.
pub const SERVER_NODE_BASE: u32 = 1 << 16;

impl SpanRecord {
    /// Serializes the record as one JSON object (a JSONL line, sans
    /// newline). Hand-rolled — every field is numeric or a fixed literal.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace_id\":{},\"span_id\":{},\"parent\":{},\"kind\":\"{}\",\
             \"node\":{},\"start_ns\":{},\"end_ns\":{}}}",
            self.trace_id,
            self.span_id,
            self.parent_span,
            self.kind.name(),
            self.node,
            self.start_ns,
            self.end_ns
        )
    }
}

#[cfg(feature = "trace")]
#[derive(Debug, Default)]
struct SpanLogInner {
    spans: Vec<SpanRecord>,
    next_id: u64,
}

/// A shared, append-only log of completed spans for one run.
///
/// Cloning shares the buffer; [`SpanLog::for_node`] stamps a node id so
/// every client and shard writes into one common timeline with its own
/// identity. An inactive (default) log records nothing and hands out no
/// span ids, so the client-side wrapping code emits no wire envelopes —
/// runtime tracing is opt-in per run even in `trace`-enabled builds, and
/// with the feature off the whole type is zero-sized.
#[derive(Clone, Default)]
pub struct SpanLog {
    #[cfg(feature = "trace")]
    inner: Option<Rc<RefCell<SpanLogInner>>>,
    #[cfg(feature = "trace")]
    node: u32,
}

impl fmt::Debug for SpanLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanLog")
            .field("active", &self.active())
            .finish()
    }
}

impl SpanLog {
    /// Creates an **active** log (node id 0) with an empty buffer. With
    /// the `trace` feature off this is still the inert zero-sized log.
    pub fn new() -> Self {
        SpanLog {
            #[cfg(feature = "trace")]
            inner: Some(Rc::default()),
            #[cfg(feature = "trace")]
            node: 0,
        }
    }

    /// True when this log records spans (feature compiled in *and*
    /// created via [`SpanLog::new`]).
    #[inline]
    pub fn active(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// A handle onto the same buffer that stamps `node` on every span it
    /// records.
    pub fn for_node(&self, node: u32) -> SpanLog {
        #[cfg(feature = "trace")]
        {
            SpanLog {
                inner: self.inner.clone(),
                node,
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = node;
            SpanLog::default()
        }
    }

    /// Allocates a fresh span id (0 when inactive — callers treat 0 as
    /// "no span").
    pub fn next_span_id(&self) -> u64 {
        #[cfg(feature = "trace")]
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            inner.next_id += 1;
            return inner.next_id;
        }
        0
    }

    /// The current virtual instant in nanoseconds (0 outside a sim or
    /// with tracing compiled out).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            try_now().unwrap_or(SimTime::ZERO).as_nanos()
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Records one completed span with explicit times. No-op when
    /// inactive.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        trace_id: u64,
        span_id: u64,
        parent_span: u64,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
    ) {
        #[cfg(feature = "trace")]
        if let Some(inner) = &self.inner {
            inner.borrow_mut().spans.push(SpanRecord {
                trace_id,
                span_id,
                parent_span,
                kind,
                node: self.node,
                start_ns,
                end_ns,
            });
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (trace_id, span_id, parent_span, kind, start_ns, end_ns);
        }
    }

    /// Allocates a span id and records the span in one step, returning
    /// the new id (0 when inactive).
    pub fn emit(
        &self,
        trace_id: u64,
        parent_span: u64,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
    ) -> u64 {
        if !self.active() {
            return 0;
        }
        let id = self.next_span_id();
        self.record(trace_id, id, parent_span, kind, start_ns, end_ns);
        id
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        #[cfg(feature = "trace")]
        if let Some(inner) = &self.inner {
            return inner.borrow().spans.len();
        }
        0
    }

    /// True if no spans were recorded (always true when inactive).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every recorded span, in completion order.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        #[cfg(feature = "trace")]
        if let Some(inner) = &self.inner {
            return inner.borrow().spans.clone();
        }
        Vec::new()
    }

    /// The span log as JSONL (one span per line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.snapshot() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_round_trips_through_bytes() {
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF_0012_3456,
            parent_span: 41,
            flags: TRACE_FLAG_BATCHED | TRACE_FLAG_FETCH,
        };
        let mut buf = Vec::new();
        ctx.encode_into(&mut buf);
        assert_eq!(buf.len(), TRACE_CTX_WIRE_BYTES);
        assert_eq!(TraceContext::decode(&buf), Some(ctx));
        for cut in 0..TRACE_CTX_WIRE_BYTES {
            assert_eq!(TraceContext::decode(&buf[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            SpanKind::Request,
            SpanKind::Rpc,
            SpanKind::Dispatch,
            SpanKind::IndexExec,
            SpanKind::Merge,
            SpanKind::Offload,
        ] {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::from_name("nope"), None);
    }

    #[test]
    fn default_log_is_inactive_and_silent() {
        let log = SpanLog::default();
        assert!(!log.active());
        assert_eq!(log.next_span_id(), 0);
        log.record(1, 2, 0, SpanKind::Request, 0, 5);
        assert!(log.is_empty());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn active_log_records_and_stamps_nodes() {
        let log = SpanLog::new();
        assert!(log.active());
        let c3 = log.for_node(3);
        let srv = log.for_node(SERVER_NODE_BASE + 1);
        let root = c3.next_span_id();
        c3.record(root, root, 0, SpanKind::Request, 0, 100);
        let child = srv.emit(root, root, SpanKind::IndexExec, 10, 60);
        assert_ne!(child, 0);
        let spans = log.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].node, 3);
        assert_eq!(spans[1].node, SERVER_NODE_BASE + 1);
        assert_eq!(spans[1].parent_span, root);
        assert_eq!(spans[1].trace_id, root);
        let jsonl = log.to_jsonl();
        assert!(jsonl.contains("\"kind\":\"request\""));
        assert!(jsonl.contains("\"kind\":\"index_exec\""));
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_log_is_zero_sized() {
        assert_eq!(std::mem::size_of::<SpanLog>(), 0);
        let log = SpanLog::new();
        assert!(!log.active());
        assert!(log.snapshot().is_empty());
    }
}
