//! Structured adaptive-decision events.
//!
//! Algorithm 1's behaviour — heartbeat utilization consumption, busy-band
//! escalation, back-off draining, and the final fast-vs-offload route —
//! was previously only visible through aggregate counters. The client's
//! [`crate::adaptive::AdaptiveState`] can now emit one
//! [`AdaptiveEventRecord`] per decision step into a shared
//! [`AdaptiveEventLog`], turning a run into a replayable timeline that
//! `adaptive_dynamics --metrics-out` writes as JSONL.
//!
//! Event logging is *not* gated behind the `trace` feature: it is opt-in
//! per run, off the request hot path (a few events per adaptive decision),
//! and the satellite tests script it directly.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use catfish_simnet::{try_now, SimTime};

/// The transport a decision routed one operation down — the three-way
/// generalization of the paper's binary fast-vs-offload choice. `Fast`
/// spends server CPU and server NIC initiation, `Fetch` spends server CPU
/// but moves NIC initiation to the client (RFP-style mailbox deposit +
/// one-sided read), and `Offload` bypasses the server entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteChoice {
    /// Fast messaging: server executes and write-backs over the ring.
    Fast,
    /// Mailbox fetching: server executes and deposits; client pulls.
    Fetch,
    /// Client-side offload: one-sided traversal, no server involvement.
    Offload,
}

impl RouteChoice {
    /// Stable snake_case name used in JSONL output and bench rows.
    pub fn name(&self) -> &'static str {
        match self {
            RouteChoice::Fast => "fast",
            RouteChoice::Fetch => "fetch",
            RouteChoice::Offload => "offload",
        }
    }
}

impl fmt::Display for RouteChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured adaptive-algorithm event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptiveEvent {
    /// A fresh heartbeat's utilization sample was consumed by a decision.
    HeartbeatConsumed {
        /// Server CPU utilization carried by the heartbeat, in `[0, 1]`.
        util: f64,
    },
    /// Utilization crossed the busy threshold: the busy streak grew and a
    /// new back-off band was drawn (Algorithm 1's doubling step).
    BandEscalated {
        /// Consecutive busy heartbeats (`r_busy` after the escalation).
        r_busy: u32,
        /// Offloaded operations still to perform before re-probing.
        r_off: u32,
    },
    /// Utilization fell below the threshold: the busy streak reset.
    BusyReset,
    /// The heartbeat stream went stale: no heartbeat for `k · Inv` after
    /// at least one had been seen. The client stops trusting the last
    /// utilization figure and fails over to offloading until heartbeats
    /// resume.
    StaleHeartbeat {
        /// How long the stream had been silent when the failsafe fired,
        /// in nanoseconds of virtual time.
        silent_ns: u64,
    },
    /// The route chosen for this operation.
    Route {
        /// Which of the three transports the operation was sent down.
        route: RouteChoice,
    },
    /// The decision state crossed into or out of the fetch regime: the
    /// expected response size moved across the write-back/fetch crossover
    /// derived from the heartbeat's per-mode cost terms.
    FetchTransition {
        /// True when entering the fetch regime, false when leaving it.
        entering: bool,
        /// The EWMA of response item counts at the transition.
        ewma_items: f64,
        /// The crossover threshold (in items) in force at the transition.
        threshold_items: f64,
    },
}

impl AdaptiveEvent {
    /// Stable snake_case event kind used in JSONL output.
    pub fn kind(&self) -> &'static str {
        match self {
            AdaptiveEvent::HeartbeatConsumed { .. } => "heartbeat_consumed",
            AdaptiveEvent::BandEscalated { .. } => "band_escalated",
            AdaptiveEvent::BusyReset => "busy_reset",
            AdaptiveEvent::StaleHeartbeat { .. } => "stale_heartbeat",
            AdaptiveEvent::Route { .. } => "route",
            AdaptiveEvent::FetchTransition { .. } => "fetch_transition",
        }
    }
}

/// An [`AdaptiveEvent`] stamped with its virtual time, client id, and
/// shard id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveEventRecord {
    /// Virtual instant the event was emitted.
    pub t: SimTime,
    /// Client the deciding `AdaptiveState` belongs to.
    pub client: u32,
    /// Shard the decision targeted (0 in single-server runs). Algorithm 1
    /// runs independently per shard, so plotting tools must group by this
    /// field rather than aggregating a cluster into one timeline.
    pub shard: u32,
    /// The event itself.
    pub event: AdaptiveEvent,
}

impl AdaptiveEventRecord {
    /// Serializes the record as one JSON object (a JSONL line, sans
    /// newline). Hand-rolled: every field is numeric or a fixed literal,
    /// so no escaping is needed.
    pub fn to_json(&self) -> String {
        let head = format!(
            "{{\"t_ns\":{},\"client\":{},\"shard\":{},\"event\":\"{}\"",
            self.t.as_nanos(),
            self.client,
            self.shard,
            self.event.kind()
        );
        match self.event {
            AdaptiveEvent::HeartbeatConsumed { util } => {
                format!("{head},\"util\":{util:.4}}}")
            }
            AdaptiveEvent::BandEscalated { r_busy, r_off } => {
                format!("{head},\"r_busy\":{r_busy},\"r_off\":{r_off}}}")
            }
            AdaptiveEvent::BusyReset => format!("{head}}}"),
            AdaptiveEvent::StaleHeartbeat { silent_ns } => {
                format!("{head},\"silent_ns\":{silent_ns}}}")
            }
            AdaptiveEvent::Route { route } => {
                format!("{head},\"route\":\"{route}\"}}")
            }
            AdaptiveEvent::FetchTransition {
                entering,
                ewma_items,
                threshold_items,
            } => {
                format!(
                    "{head},\"entering\":{entering},\"ewma_items\":{ewma_items:.2},\
                     \"threshold_items\":{threshold_items:.2}}}"
                )
            }
        }
    }
}

impl fmt::Display for AdaptiveEventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// A shared, append-only log of adaptive events for one run.
///
/// Cloning shares the buffer; [`AdaptiveEventLog::for_client`] stamps a
/// client id so each client's `AdaptiveState` gets its own handle into
/// the common timeline.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveEventLog {
    events: Rc<RefCell<Vec<AdaptiveEventRecord>>>,
    client: u32,
    shard: u32,
}

impl AdaptiveEventLog {
    /// Creates an empty log (client id 0, shard id 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle onto the same buffer that stamps `client` on every
    /// event it emits (keeping this handle's shard id).
    pub fn for_client(&self, client: u32) -> Self {
        AdaptiveEventLog {
            events: Rc::clone(&self.events),
            client,
            shard: self.shard,
        }
    }

    /// A handle onto the same buffer that stamps `shard` on every event
    /// it emits (keeping this handle's client id). A cluster client holds
    /// one per-shard `AdaptiveState`, each wired to
    /// `log.for_client(c).for_shard(s)`.
    pub fn for_shard(&self, shard: u32) -> Self {
        AdaptiveEventLog {
            events: Rc::clone(&self.events),
            client: self.client,
            shard,
        }
    }

    /// Appends an event stamped with the current virtual time (epoch
    /// outside a simulation) and this handle's client and shard ids.
    pub fn emit(&self, event: AdaptiveEvent) {
        self.events.borrow_mut().push(AdaptiveEventRecord {
            t: try_now().unwrap_or(SimTime::ZERO),
            client: self.client,
            shard: self.shard,
            event,
        });
    }

    /// Number of events logged so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True if no events were logged.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Snapshot of the full timeline in emission order.
    pub fn snapshot(&self) -> Vec<AdaptiveEventRecord> {
        self.events.borrow().clone()
    }

    /// The timeline as JSONL (one event per line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.events.borrow().iter() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_timeline() {
        let log = AdaptiveEventLog::new();
        let c3 = log.for_client(3);
        let c7 = log.for_client(7);
        c3.emit(AdaptiveEvent::Route {
            route: RouteChoice::Fast,
        });
        c7.emit(AdaptiveEvent::BusyReset);
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].client, 3);
        assert_eq!(events[1].client, 7);
    }

    #[test]
    fn shard_handles_stamp_both_ids() {
        let log = AdaptiveEventLog::new();
        let c2s1 = log.for_client(2).for_shard(1);
        let c2s3 = log.for_client(2).for_shard(3);
        c2s1.emit(AdaptiveEvent::Route {
            route: RouteChoice::Offload,
        });
        c2s3.emit(AdaptiveEvent::Route {
            route: RouteChoice::Fast,
        });
        let events = log.snapshot();
        assert_eq!((events[0].client, events[0].shard), (2, 1));
        assert_eq!((events[1].client, events[1].shard), (2, 3));
        assert!(events[0].to_json().contains("\"shard\":1"));
        assert!(events[1].to_json().contains("\"shard\":3"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let log = AdaptiveEventLog::new();
        log.emit(AdaptiveEvent::HeartbeatConsumed { util: 0.97 });
        log.emit(AdaptiveEvent::BandEscalated {
            r_busy: 2,
            r_off: 11,
        });
        log.emit(AdaptiveEvent::Route {
            route: RouteChoice::Offload,
        });
        log.emit(AdaptiveEvent::StaleHeartbeat {
            silent_ns: 50_000_000,
        });
        log.emit(AdaptiveEvent::FetchTransition {
            entering: true,
            ewma_items: 120.5,
            threshold_items: 73.0,
        });
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[3].contains("\"event\":\"stale_heartbeat\""));
        assert!(lines[3].contains("\"silent_ns\":50000000"));
        assert!(lines[0].contains("\"event\":\"heartbeat_consumed\""));
        assert!(lines[0].contains("\"util\":0.9700"));
        assert!(lines[1].contains("\"r_busy\":2"));
        assert!(lines[1].contains("\"r_off\":11"));
        assert!(lines[2].ends_with("\"route\":\"offload\"}"));
        assert!(lines[4].contains("\"event\":\"fetch_transition\""));
        assert!(lines[4].contains("\"entering\":true"));
        assert!(lines[4].contains("\"ewma_items\":120.50"));
        assert!(lines[4].contains("\"threshold_items\":73.00"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn route_names_are_stable() {
        assert_eq!(RouteChoice::Fast.name(), "fast");
        assert_eq!(RouteChoice::Fetch.name(), "fetch");
        assert_eq!(RouteChoice::Offload.name(), "offload");
        let log = AdaptiveEventLog::new();
        log.emit(AdaptiveEvent::Route {
            route: RouteChoice::Fetch,
        });
        assert!(log.to_jsonl().contains("\"route\":\"fetch\""));
    }

    #[test]
    fn events_are_stamped_with_virtual_time() {
        use catfish_simnet::{sleep, Sim, SimDuration};
        let sim = Sim::new();
        sim.run_until(async {
            let log = AdaptiveEventLog::new();
            log.emit(AdaptiveEvent::BusyReset);
            sleep(SimDuration::from_micros(9)).await;
            log.emit(AdaptiveEvent::BusyReset);
            let events = log.snapshot();
            assert_eq!(
                events[1].t.saturating_duration_since(events[0].t),
                SimDuration::from_micros(9)
            );
        });
    }
}
