//! The per-connection flight recorder: a fixed-size ring of recent
//! protocol and adaptive events, auto-dumped on anomalies.
//!
//! A tail-latency excursion under a fault plan used to leave no record of
//! *what the connection was doing* when it happened — counters say a
//! timeout occurred, not what preceded it. Every [`crate::service::ServiceClient`]
//! therefore keeps a [`FlightRecorder`]: an **always-on** bounded ring of
//! the last [`FLIGHT_RING`] protocol events (sends, responses,
//! retransmits, heartbeats, route decisions). Recording is O(1) per event
//! with no allocation in steady state and touches no virtual time, so it
//! cannot perturb a run. When an anomaly fires — a timeout, a ring CRC
//! failure, a receiver resync, a stale-heartbeat failover, or a mailbox
//! fetch fallback — the recorder snapshots the ring into an annotated
//! [`FlightDump`], preserving the ≥32 events of history that explain it.
//!
//! Unlike phase spans, the recorder is *not* behind the `trace` feature:
//! it is precisely the thing one wants compiled into production builds.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use catfish_simnet::{try_now, SimTime};

use super::events::RouteChoice;

/// Capacity of the per-connection event ring. Dump consumers rely on at
/// least 32 events of pre-anomaly history once a connection has warmed
/// up, so the ring holds double that.
pub const FLIGHT_RING: usize = 64;

/// Dumps retained per recorder; older dumps are dropped first so a
/// pathological connection cannot grow without bound.
const MAX_DUMPS: usize = 256;

/// One routine protocol event in a connection's recent history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEvent {
    /// A request frame was posted to the ring.
    Send {
        /// Request sequence number (fetch flag masked off).
        seq: u32,
        /// Encoded frame payload bytes.
        bytes: u32,
    },
    /// A final (END) response arrived for a request.
    Recv {
        /// Request sequence number.
        seq: u32,
        /// Response items carried.
        items: u32,
    },
    /// A timed-out request was retransmitted.
    Retransmit {
        /// Request sequence number.
        seq: u32,
    },
    /// A server heartbeat was consumed.
    HeartbeatRx {
        /// Advertised server CPU utilization × 1000.
        util_permille: u16,
    },
    /// Algorithm 1 routed an operation.
    Route {
        /// The transport chosen.
        route: RouteChoice,
    },
}

impl FlightEvent {
    /// Stable snake_case name used in JSONL output.
    pub fn kind(&self) -> &'static str {
        match self {
            FlightEvent::Send { .. } => "send",
            FlightEvent::Recv { .. } => "recv",
            FlightEvent::Retransmit { .. } => "retransmit",
            FlightEvent::HeartbeatRx { .. } => "heartbeat_rx",
            FlightEvent::Route { .. } => "route",
        }
    }
}

/// An anomaly that triggers a flight dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anomaly {
    /// A request exhausted its per-attempt deadline.
    Timeout {
        /// Request sequence number.
        seq: u32,
    },
    /// A ring frame failed CRC validation on receive.
    ChecksumFailure,
    /// The receiver resynchronized past a hole in the ring.
    Resync,
    /// The heartbeat stream went stale and the client failed over to
    /// offloading.
    StaleHeartbeat {
        /// Silence at the failover, nanoseconds of virtual time.
        silent_ns: u64,
    },
    /// A fetch-mode read fell back to the write-back path.
    FetchFallback {
        /// Request sequence number.
        seq: u32,
    },
    /// A hash-range reconciliation pass finished with replicas still
    /// divergent (the root digests disagreed after the walk).
    RepairFailed {
        /// Entries still differing between the replicas after repair.
        residual: u64,
    },
}

impl Anomaly {
    /// Stable snake_case name used in JSONL output and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Anomaly::Timeout { .. } => "timeout",
            Anomaly::ChecksumFailure => "checksum_failure",
            Anomaly::Resync => "resync",
            Anomaly::StaleHeartbeat { .. } => "stale_heartbeat",
            Anomaly::FetchFallback { .. } => "fetch_fallback",
            Anomaly::RepairFailed { .. } => "repair_failed",
        }
    }
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind())
    }
}

/// A [`FlightEvent`] stamped with its virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEntry {
    /// Virtual instant the event was recorded.
    pub t: SimTime,
    /// The event itself.
    pub event: FlightEvent,
}

/// One anomaly's annotated history: the anomaly, its connection identity,
/// and a snapshot of the event ring (oldest first) at the moment it fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Virtual instant the anomaly fired.
    pub t: SimTime,
    /// Client the connection belongs to.
    pub client: u32,
    /// Shard the connection targets (0 in single-server runs).
    pub shard: u32,
    /// What fired.
    pub anomaly: Anomaly,
    /// The preceding events, oldest first (up to [`FLIGHT_RING`]).
    pub history: Vec<FlightEntry>,
}

impl FlightDump {
    /// Serializes the dump as one JSON object (a JSONL line, sans
    /// newline). Hand-rolled — every field is numeric or a fixed literal.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"t_ns\":{},\"client\":{},\"shard\":{},\"anomaly\":\"{}\"",
            self.t.as_nanos(),
            self.client,
            self.shard,
            self.anomaly.kind()
        );
        match self.anomaly {
            Anomaly::Timeout { seq } | Anomaly::FetchFallback { seq } => {
                out.push_str(&format!(",\"seq\":{seq}"));
            }
            Anomaly::StaleHeartbeat { silent_ns } => {
                out.push_str(&format!(",\"silent_ns\":{silent_ns}"));
            }
            Anomaly::RepairFailed { residual } => {
                out.push_str(&format!(",\"residual\":{residual}"));
            }
            Anomaly::ChecksumFailure | Anomaly::Resync => {}
        }
        out.push_str(",\"history\":[");
        for (i, e) in self.history.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t_ns\":{},\"event\":\"{}\"",
                e.t.as_nanos(),
                e.event.kind()
            ));
            match e.event {
                FlightEvent::Send { seq, bytes } => {
                    out.push_str(&format!(",\"seq\":{seq},\"bytes\":{bytes}"));
                }
                FlightEvent::Recv { seq, items } => {
                    out.push_str(&format!(",\"seq\":{seq},\"items\":{items}"));
                }
                FlightEvent::Retransmit { seq } => out.push_str(&format!(",\"seq\":{seq}")),
                FlightEvent::HeartbeatRx { util_permille } => {
                    out.push_str(&format!(",\"util_permille\":{util_permille}"));
                }
                FlightEvent::Route { route } => {
                    out.push_str(&format!(",\"route\":\"{route}\""));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    ring: VecDeque<FlightEntry>,
    dumps: Vec<FlightDump>,
    dropped_dumps: u64,
    client: u32,
    shard: u32,
}

/// The always-on per-connection flight recorder (cloneable shared
/// handle). Created by every `ServiceClient`; the ring receiver and the
/// adaptive layer share the same recorder through clones.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Rc<RefCell<RecorderInner>>,
}

impl FlightRecorder {
    /// A fresh recorder (client 0, shard 0, empty ring).
    pub fn new() -> Self {
        FlightRecorder {
            inner: Rc::new(RefCell::new(RecorderInner {
                ring: VecDeque::with_capacity(FLIGHT_RING),
                ..RecorderInner::default()
            })),
        }
    }

    /// Stamps the connection identity onto future dumps.
    pub fn set_ids(&self, client: u32, shard: u32) {
        let mut inner = self.inner.borrow_mut();
        inner.client = client;
        inner.shard = shard;
    }

    /// Records one routine event (O(1), no virtual time touched).
    #[inline]
    pub fn note(&self, event: FlightEvent) {
        let mut inner = self.inner.borrow_mut();
        if inner.ring.len() == FLIGHT_RING {
            inner.ring.pop_front();
        }
        inner.ring.push_back(FlightEntry {
            t: try_now().unwrap_or(SimTime::ZERO),
            event,
        });
    }

    /// Fires an anomaly: snapshots the current ring into an annotated
    /// dump. The ring itself is preserved (a burst of anomalies each gets
    /// the history that preceded *it*).
    pub fn anomaly(&self, anomaly: Anomaly) {
        let mut inner = self.inner.borrow_mut();
        let history: Vec<FlightEntry> = inner.ring.iter().copied().collect();
        let dump = FlightDump {
            t: try_now().unwrap_or(SimTime::ZERO),
            client: inner.client,
            shard: inner.shard,
            anomaly,
            history,
        };
        if inner.dumps.len() == MAX_DUMPS {
            inner.dumps.remove(0);
            inner.dropped_dumps += 1;
        }
        inner.dumps.push(dump);
    }

    /// Number of dumps fired so far (including any dropped beyond the
    /// retention cap).
    pub fn dump_count(&self) -> u64 {
        let inner = self.inner.borrow();
        inner.dumps.len() as u64 + inner.dropped_dumps
    }

    /// Number of events currently held in the ring.
    pub fn ring_len(&self) -> usize {
        self.inner.borrow().ring.len()
    }

    /// Snapshot of the retained dumps, oldest first.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.inner.borrow().dumps.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_dump_preserves_history() {
        let rec = FlightRecorder::new();
        rec.set_ids(7, 2);
        for i in 0..(FLIGHT_RING as u32 + 10) {
            rec.note(FlightEvent::Send { seq: i, bytes: 40 });
        }
        assert_eq!(rec.ring_len(), FLIGHT_RING);
        rec.anomaly(Anomaly::Timeout { seq: 99 });
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!((d.client, d.shard), (7, 2));
        assert_eq!(d.history.len(), FLIGHT_RING);
        // Oldest retained entry is the 11th send (0..10 were evicted).
        assert_eq!(d.history[0].event, FlightEvent::Send { seq: 10, bytes: 40 });
        assert_eq!(
            d.history.last().unwrap().event,
            FlightEvent::Send {
                seq: FLIGHT_RING as u32 + 9,
                bytes: 40
            }
        );
    }

    #[test]
    fn burst_of_anomalies_each_snapshot_their_own_history() {
        let rec = FlightRecorder::new();
        rec.note(FlightEvent::Route {
            route: RouteChoice::Fast,
        });
        rec.anomaly(Anomaly::ChecksumFailure);
        rec.note(FlightEvent::Retransmit { seq: 1 });
        rec.anomaly(Anomaly::Resync);
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].history.len(), 1);
        assert_eq!(dumps[1].history.len(), 2);
        assert_eq!(rec.dump_count(), 2);
    }

    #[test]
    fn dump_retention_is_capped_but_counted() {
        let rec = FlightRecorder::new();
        for _ in 0..(MAX_DUMPS + 5) {
            rec.anomaly(Anomaly::ChecksumFailure);
        }
        assert_eq!(rec.dumps().len(), MAX_DUMPS);
        assert_eq!(rec.dump_count(), (MAX_DUMPS + 5) as u64);
    }

    #[test]
    fn dump_json_is_one_object() {
        let rec = FlightRecorder::new();
        rec.set_ids(1, 0);
        rec.note(FlightEvent::Send { seq: 4, bytes: 37 });
        rec.note(FlightEvent::HeartbeatRx { util_permille: 512 });
        rec.anomaly(Anomaly::StaleHeartbeat {
            silent_ns: 50_000_000,
        });
        let json = rec.dumps()[0].to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"anomaly\":\"stale_heartbeat\""));
        assert!(json.contains("\"silent_ns\":50000000"));
        assert!(json.contains("\"event\":\"send\""));
        assert!(json.contains("\"util_permille\":512"));
    }
}
