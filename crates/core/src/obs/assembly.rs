//! Cross-shard trace assembly: stitching [`SpanRecord`]s back into
//! per-request trees.
//!
//! The [`SpanLog`](super::SpanLog) is a flat completion-ordered timeline
//! written by every client and shard in a run; [`TraceAssembler`] groups
//! it by trace id and rebuilds each request's causal tree — client issue
//! at the root, per-shard RPC legs beneath it, server dispatch/index-exec
//! spans linked through the wire-propagated context, and the merge leaf.
//! The central structural invariant is **connectedness**: every span's
//! parent is present in the same trace and there is exactly one root, so
//! a window query scattered over four shards under a chaos fault plan
//! still reconstructs into one tree per request (retransmitted requests
//! may legitimately execute twice server-side — that is more children,
//! never an orphan). [`Assembly::to_chrome_json`] exports the trees in
//! Chrome `trace_event` format (`chrome://tracing`, Perfetto), with one
//! "process" lane per node.

use std::collections::{BTreeMap, HashSet};

use super::trace::SpanRecord;

/// One reassembled request tree.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id (equal to the root span's id).
    pub trace_id: u64,
    /// The trace's spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Indices (into `spans`) of roots — spans with `parent_span == 0`. A
    /// well-formed trace has exactly one.
    pub roots: Vec<usize>,
    /// Indices of orphans — non-root spans whose parent id does not
    /// appear in this trace.
    pub orphans: Vec<usize>,
}

impl TraceTree {
    /// True when the tree is fully connected: exactly one root, no
    /// orphans, and the root's id matches the trace id.
    pub fn connected(&self) -> bool {
        self.orphans.is_empty()
            && self.roots.len() == 1
            && self.spans[self.roots[0]].span_id == self.trace_id
    }

    /// Wall-span of the whole tree in virtual nanoseconds (latest end −
    /// earliest start).
    pub fn duration_ns(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Number of distinct nodes (client + shards) that contributed spans.
    pub fn node_count(&self) -> usize {
        self.spans
            .iter()
            .map(|s| s.node)
            .collect::<HashSet<u32>>()
            .len()
    }
}

/// Groups span records into [`TraceTree`]s.
#[derive(Debug, Default)]
pub struct TraceAssembler;

impl TraceAssembler {
    /// Assembles a flat span list into per-trace trees, ordered by trace
    /// id. Spans with `trace_id == 0` (emitted by an inactive log, which
    /// should not happen) are grouped under trace 0 and will fail
    /// connectedness — surfacing the bug rather than hiding it.
    pub fn assemble(spans: &[SpanRecord]) -> Assembly {
        let mut by_trace: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
        for s in spans {
            by_trace.entry(s.trace_id).or_default().push(*s);
        }
        let traces = by_trace
            .into_iter()
            .map(|(trace_id, spans)| {
                let ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
                let mut roots = Vec::new();
                let mut orphans = Vec::new();
                for (i, s) in spans.iter().enumerate() {
                    if s.parent_span == 0 {
                        roots.push(i);
                    } else if !ids.contains(&s.parent_span) {
                        orphans.push(i);
                    }
                }
                TraceTree {
                    trace_id,
                    spans,
                    roots,
                    orphans,
                }
            })
            .collect();
        Assembly { traces }
    }
}

/// The assembled run: one tree per trace id.
#[derive(Debug, Clone, Default)]
pub struct Assembly {
    /// Trees, ordered by trace id.
    pub traces: Vec<TraceTree>,
}

impl Assembly {
    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no traces were assembled.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// True when every trace is a connected tree.
    pub fn all_connected(&self) -> bool {
        self.traces.iter().all(TraceTree::connected)
    }

    /// Trace ids of the disconnected trees (empty on a healthy run).
    pub fn disconnected(&self) -> Vec<u64> {
        self.traces
            .iter()
            .filter(|t| !t.connected())
            .map(|t| t.trace_id)
            .collect()
    }

    /// Total spans across every trace.
    pub fn span_count(&self) -> usize {
        self.traces.iter().map(|t| t.spans.len()).sum()
    }

    /// Exports every span as a Chrome `trace_event` JSON document (an
    /// object with a `traceEvents` array of "X" complete events), loadable
    /// in `chrome://tracing` or Perfetto. Nodes become process ids — the
    /// client and each shard get their own lane — and trace ids become
    /// thread ids, so one request's spans line up in a row.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for tree in &self.traces {
            for s in &tree.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                let ts = s.start_ns as f64 / 1000.0;
                let dur = s.end_ns.saturating_sub(s.start_ns) as f64 / 1000.0;
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"catfish\",\"ph\":\"X\",\
                     \"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{},\"tid\":{},\
                     \"args\":{{\"trace_id\":{},\"span_id\":{},\"parent\":{}}}}}",
                    s.kind.name(),
                    s.node,
                    s.trace_id,
                    s.trace_id,
                    s.span_id,
                    s.parent_span
                ));
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::trace::{SpanKind, SERVER_NODE_BASE};

    fn span(
        trace_id: u64,
        span_id: u64,
        parent: u64,
        kind: SpanKind,
        node: u32,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent_span: parent,
            kind,
            node,
            start_ns: start,
            end_ns: end,
        }
    }

    /// A 2-shard scatter-gather trace plus a single-shard one.
    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            // Trace 1: root on client 0, RPCs to shards 0/1, server spans,
            // merge. Completion order is leaf-first, as in a real run.
            span(1, 4, 2, SpanKind::IndexExec, SERVER_NODE_BASE, 20, 40),
            span(1, 5, 3, SpanKind::IndexExec, SERVER_NODE_BASE + 1, 25, 50),
            span(1, 2, 1, SpanKind::Rpc, 0, 10, 45),
            span(1, 3, 1, SpanKind::Rpc, 0, 10, 55),
            span(1, 6, 1, SpanKind::Merge, 0, 55, 60),
            span(1, 1, 0, SpanKind::Request, 0, 0, 60),
            // Trace 7: single-shard request.
            span(7, 8, 7, SpanKind::IndexExec, SERVER_NODE_BASE, 105, 110),
            span(7, 7, 0, SpanKind::Request, 1, 100, 115),
        ]
    }

    #[test]
    fn assembles_connected_trees() {
        let asm = TraceAssembler::assemble(&sample_spans());
        assert_eq!(asm.len(), 2);
        assert!(asm.all_connected(), "{:?}", asm.disconnected());
        assert_eq!(asm.span_count(), 8);
        let t1 = &asm.traces[0];
        assert_eq!(t1.trace_id, 1);
        assert_eq!(t1.duration_ns(), 60);
        assert_eq!(t1.node_count(), 3); // client 0 + two shards
    }

    #[test]
    fn orphans_and_multiple_roots_break_connectedness() {
        // Parent 99 never recorded → orphan.
        let orphaned = vec![
            span(1, 1, 0, SpanKind::Request, 0, 0, 10),
            span(1, 2, 99, SpanKind::IndexExec, SERVER_NODE_BASE, 2, 5),
        ];
        let asm = TraceAssembler::assemble(&orphaned);
        assert!(!asm.all_connected());
        assert_eq!(asm.disconnected(), vec![1]);
        assert_eq!(asm.traces[0].orphans.len(), 1);

        // Two roots in one trace id.
        let two_roots = vec![
            span(3, 3, 0, SpanKind::Request, 0, 0, 10),
            span(3, 4, 0, SpanKind::Request, 1, 0, 10),
        ];
        assert!(!TraceAssembler::assemble(&two_roots).all_connected());

        // Root id disagreeing with the trace id.
        let bad_root = vec![span(5, 6, 0, SpanKind::Request, 0, 0, 10)];
        assert!(!TraceAssembler::assemble(&bad_root).all_connected());
    }

    #[test]
    fn duplicate_server_execution_is_not_an_orphan() {
        // A retransmitted request executes twice server-side: two
        // IndexExec children under the same parent is still connected.
        let spans = vec![
            span(1, 1, 0, SpanKind::Request, 0, 0, 100),
            span(1, 2, 1, SpanKind::IndexExec, SERVER_NODE_BASE, 10, 20),
            span(1, 3, 1, SpanKind::IndexExec, SERVER_NODE_BASE, 60, 70),
        ];
        assert!(TraceAssembler::assemble(&spans).all_connected());
    }

    #[test]
    fn chrome_export_shape() {
        let asm = TraceAssembler::assemble(&sample_spans());
        let json = asm.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"merge\""));
        assert!(json.contains(&format!("\"pid\":{}", SERVER_NODE_BASE + 1)));
        // 8 spans → 8 events.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 8);
    }

    #[test]
    fn empty_assembly() {
        let asm = TraceAssembler::assemble(&[]);
        assert!(asm.is_empty());
        assert!(asm.all_connected());
        assert_eq!(asm.to_chrome_json(), "{\"traceEvents\":[]}");
    }
}
