//! Configuration: server cost model, adaptive parameters, ring sizing.

use catfish_rdma::NetProfile;
use catfish_simnet::SimDuration;

/// How the server detects incoming ring-buffer messages (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// A worker thread per connection busy-polls its ring, occupying a core
    /// for its whole scheduling quantum even when idle. Collapses when
    /// connections outnumber cores (Fig. 7).
    Polling,
    /// Workers block on the completion channel (RDMA Write-with-IMM) and
    /// yield the CPU until a message arrives.
    EventDriven,
    /// Adaptive spin: a worker polls its ring for a short grace window
    /// after the last arrival (polling-grade latency while traffic flows),
    /// releases the core and yields when the grace expires, and after
    /// [`ServerConfig::spin_yield_rounds`] idle turns parks off-CPU on the
    /// completion channel (re-arming the CQ) until the next message. Keeps
    /// hot connections on the fast path without Fig. 7's oversubscription
    /// collapse: idle connections cost no cores.
    AdaptiveSpin,
}

/// CPU cost model for server-side request processing.
///
/// These constants translate logical work (nodes visited, results
/// marshalled) into simulated core time. Defaults are calibrated so a
/// 28-core server saturates at roughly the paper's observed throughput for
/// the 2-million-rectangle tree (see DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost to pick up and dispatch one **ring frame** (CQ poll,
    /// wakeup, decode). Charged once per arriving frame, so a doorbell
    /// batch of N requests amortizes it N ways.
    pub dispatch: SimDuration,
    /// Cost per R-tree node visited during a traversal.
    pub node_visit: SimDuration,
    /// Cost per result rectangle marshalled into a response.
    pub per_result: SimDuration,
    /// Fixed extra cost of an insert/delete (lock acquisition, MBR
    /// adjustment bookkeeping) on top of per-node costs.
    pub write_op: SimDuration,
    /// Fixed cost to post one response doorbell (WQE build + MMIO ring).
    /// Charged once per `send`/`send_batch` group, so batched responses
    /// amortize it too.
    pub post: SimDuration,
    /// Write-back cost per KiB of response payload (DMA staging, WQE
    /// scatter-gather setup, wire serialization the initiating NIC's
    /// driver pays). The size-dependent half of server-initiated
    /// responses — the term remote result fetching eliminates.
    pub post_per_kb: SimDuration,
    /// Fixed cost to deposit one response into a mailbox slot (header
    /// invalidate + stamp; the RFP-style fetch path's analogue of
    /// [`CostModel::post`]).
    pub deposit: SimDuration,
    /// Deposit cost per KiB of response payload (a local memcpy, far
    /// cheaper per byte than NIC write initiation). The write-back vs
    /// fetch crossover falls where
    /// `post + post_per_kb·s = deposit + deposit_per_kb·s`.
    pub deposit_per_kb: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            dispatch: SimDuration::from_micros(8),
            node_visit: SimDuration::from_micros(12),
            per_result: SimDuration::from_nanos(150),
            write_op: SimDuration::from_micros(10),
            post: SimDuration::from_micros(4),
            post_per_kb: SimDuration::from_nanos(2_500),
            deposit: SimDuration::from_micros(10),
            deposit_per_kb: SimDuration::from_nanos(400),
        }
    }
}

/// Parameters of the adaptive back-off coordination (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveParams {
    /// `N`: the base back-off window; a newly-busy client offloads
    /// `rand() % N + (r_busy - 1) * N` rounds. The paper uses 8.
    pub n_backoff: u32,
    /// `T`: the CPU-utilization busy threshold. The paper uses 0.95.
    pub busy_threshold: f64,
    /// `Inv`: how often the server publishes heartbeats and how long a
    /// client considers one fresh. The paper uses 10 ms.
    pub heartbeat_interval: SimDuration,
    /// `k`: heartbeat-staleness failsafe. A client that has *seen* a
    /// heartbeat but then hears nothing for `k · Inv` stops trusting the
    /// last utilization figure and treats the server as busy (failing
    /// over to offloading) until heartbeats resume — the
    /// graceful-degradation dual of Algorithm 1. Clients that have never
    /// received a heartbeat are unaffected (they keep the fast path, as
    /// before).
    pub stale_after_intervals: u32,
    /// Enable the third (remote-result-fetching) route in the policy.
    /// Off by default so the binary Algorithm 1 behavior — and every
    /// experiment built on it — is unchanged unless a client opts in.
    pub fetch_enabled: bool,
    /// Minimum server utilization before fetching engages. Below this the
    /// server has posting headroom and write-back's single round trip
    /// gives strictly better latency, so fetching would only add RTTs.
    pub fetch_util_floor: f64,
    /// Fallback result-count crossover used until a heartbeat carrying
    /// per-mode serving-cost terms arrives (then the crossover is derived
    /// from the advertised costs instead).
    pub fetch_items_threshold: f64,
    /// Hysteresis for the staleness failsafe: once a client has frozen on
    /// the offload band because heartbeats went silent, it unfreezes only
    /// after this many *consecutive* fresh heartbeats. 1 restores the old
    /// behavior (unfreeze on the first heartbeat after silence), which
    /// flapped under a lossy heartbeat stream: a single surviving
    /// heartbeat snapped every client back to the fast path, re-stormed
    /// the struggling server, and went stale again an interval later.
    pub stale_recovery_intervals: u32,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            n_backoff: 8,
            busy_threshold: 0.95,
            heartbeat_interval: SimDuration::from_millis(10),
            stale_after_intervals: 5,
            fetch_enabled: false,
            fetch_util_floor: 0.5,
            fetch_items_threshold: 64.0,
            stale_recovery_intervals: 2,
        }
    }
}

impl AdaptiveParams {
    /// The default parameters with the three-way (fetch-enabled) policy
    /// switched on.
    pub fn three_way() -> Self {
        AdaptiveParams {
            fetch_enabled: true,
            ..AdaptiveParams::default()
        }
    }
}

/// Server-side configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Worker cores (the paper's server has 2 × 14).
    pub cores: usize,
    /// OS scheduling quantum for the core model.
    pub quantum: SimDuration,
    /// Message-detection mode.
    pub mode: ServerMode,
    /// Cost model for request processing.
    pub cost: CostModel,
    /// Duration over which a multi-cache-line node update is remotely
    /// visible as torn (drives version-validation retries in offloading
    /// clients).
    pub torn_write_window: SimDuration,
    /// Heartbeat publication interval (`Inv`).
    pub heartbeat_interval: SimDuration,
    /// Per-connection ring buffer capacity in bytes (the paper uses
    /// 256 KB per pair).
    pub ring_capacity: usize,
    /// Maximum results per response segment before CONT-chaining.
    pub response_segment_results: usize,
    /// Maximum requests an event-driven worker drains per wakeup and
    /// maximum response frames coalesced into one doorbell. 1 disables
    /// batching (every frame pays its own dispatch and post).
    pub max_batch: usize,
    /// How long an event-driven worker may linger after the first request
    /// of a wakeup, waiting for more arrivals to fill the batch. ZERO
    /// (the default) drains only messages that have **already** arrived —
    /// batching stays purely opportunistic and adds no latency.
    pub batch_window: SimDuration,
    /// Merge adjacent response-ring writes into one doorbell
    /// (RDMAbox-style): concurrent sends on a connection's response ring
    /// stage their frames and the first sender to win the append lock
    /// posts them all with a single Write-with-Immediate.
    pub merge_writes: bool,
    /// [`ServerMode::AdaptiveSpin`] only: how long a worker keeps spinning
    /// on its ring after the last arrival before releasing its core.
    pub spin_grace: SimDuration,
    /// [`ServerMode::AdaptiveSpin`] only: consecutive idle spin turns
    /// before the worker parks off-CPU on the completion channel.
    pub spin_yield_rounds: u32,
    /// Slots in each client's result mailbox (0 disables mailboxes — no
    /// per-client region is registered and fetch-mode clients fall back
    /// to write-back). Storm-style frugality: the per-client server
    /// memory is `mailbox_slots × mailbox_slot_bytes`, kept small because
    /// a sequential client needs only one live slot plus reuse headroom.
    pub mailbox_slots: u32,
    /// Bytes per mailbox slot, including its 16-byte header. Responses
    /// whose encoding exceeds the slot fall back to the write-back path.
    pub mailbox_slot_bytes: usize,
    /// How long a deposited-but-unacknowledged mailbox slot stays leased
    /// before the heartbeat-tick sweep reclaims it — the server-side dual
    /// of the client's `stale_after_intervals` heartbeat failover (a
    /// client that restarted mid-fetch will never ack).
    pub mailbox_lease_ttl: SimDuration,
    /// Per-connection retransmission-dedup window: how many recent
    /// non-read sequence numbers (with their cached completion status) a
    /// worker remembers. A retransmission storm longer than this window
    /// can re-execute an already-applied mutation, so deployments with
    /// aggressive timeouts and large retry budgets should size it past
    /// `max_retries × in-flight requests`.
    pub dedup_window: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cores: 28,
            quantum: SimDuration::from_millis(1),
            mode: ServerMode::EventDriven,
            cost: CostModel::default(),
            torn_write_window: SimDuration::from_micros(2),
            heartbeat_interval: SimDuration::from_millis(10),
            ring_capacity: 256 * 1024,
            response_segment_results: 1000,
            max_batch: 16,
            batch_window: SimDuration::ZERO,
            merge_writes: true,
            spin_grace: SimDuration::from_micros(20),
            spin_yield_rounds: 2,
            mailbox_slots: 16,
            mailbox_slot_bytes: 16 * 1024,
            mailbox_lease_ttl: SimDuration::from_millis(50),
            dedup_window: 1024,
        }
    }
}

/// Client-side access strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessMode {
    /// All reads through the server via ring-buffer messages.
    FastMessaging,
    /// All reads traverse the tree with one-sided RDMA Reads.
    Offloading,
    /// All reads execute on the server but the client *fetches* the
    /// result from its mailbox with one-sided RDMA Reads (RFP-style)
    /// instead of having the server write it back. Falls back to
    /// write-back when the connection has no mailbox or a response
    /// outgrows its slot.
    Fetching,
    /// Algorithm 1: switch per-request based on server heartbeats.
    Adaptive(AdaptiveParams),
}

/// Client-side configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientConfig {
    /// Access strategy for search requests (writes always use the ring).
    pub mode: AccessMode,
    /// Issue concurrent RDMA Reads for all intersecting children
    /// (paper §IV-C) instead of fetching nodes one at a time.
    pub multi_issue: bool,
    /// How long a cached copy of the tree metadata (root id, height) stays
    /// valid before an offloaded search re-reads chunk 0.
    pub meta_cache_ttl: SimDuration,
    /// Give up after this many version-validation retries of one chunk.
    pub max_read_retries: u32,
    /// Client-side per-chunk processing cost (latency only).
    pub client_node_visit: SimDuration,
    /// Cache the top `n` levels of the tree client-side (0 disables).
    /// A Cell-style enhancement the paper's §VI anticipates: cached
    /// internal nodes skip their RDMA Reads, trading staleness (bounded
    /// by [`ClientConfig::node_cache_ttl`]) for round trips.
    pub cache_levels: u32,
    /// How long a cached internal node stays valid before an offloaded
    /// search re-fetches it. Separate from [`ClientConfig::meta_cache_ttl`]:
    /// internal nodes move less than the root metadata, so they may
    /// tolerate a different staleness bound.
    pub node_cache_ttl: SimDuration,
    /// Maximum entries in the client node cache; storing into a full
    /// cache evicts the stalest entry. Bounds client memory no matter how
    /// large the tree's cached levels grow.
    pub node_cache_capacity: usize,
    /// Maximum requests coalesced into one doorbell-batched ring frame by
    /// the group-read path. 1 disables client-side batching (every
    /// request is its own doorbell, today's behavior).
    pub max_batch: usize,
    /// Latency guard for client-side coalescing: a flush is capped so its
    /// estimated service time (per-op estimate × batch size) stays within
    /// this window. ZERO disables the guard (only `max_batch` caps).
    pub batch_window: SimDuration,
    /// Deadline for one fast-messaging request attempt: if no response
    /// arrives within this window the request is retransmitted (the
    /// server deduplicates by sequence number). Generous relative to
    /// µs-scale service times so the happy path never trips it.
    pub request_timeout: SimDuration,
    /// Retransmission attempts after the first send before giving up.
    pub max_retries: u32,
    /// Initial client backoff between retransmission attempts; doubles
    /// per retry up to [`ClientConfig::retry_backoff_max`].
    pub retry_backoff: SimDuration,
    /// Ceiling for the retransmission backoff.
    pub retry_backoff_max: SimDuration,
    /// Delay before the first mailbox header poll of a fetch and between
    /// unsuccessful polls; doubles up to
    /// [`ClientConfig::fetch_poll_max`]. Small relative to service time
    /// so a ready result is picked up within one poll.
    pub fetch_poll_initial: SimDuration,
    /// Ceiling for the fetch poll backoff.
    pub fetch_poll_max: SimDuration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            mode: AccessMode::Adaptive(AdaptiveParams::default()),
            multi_issue: true,
            meta_cache_ttl: SimDuration::from_millis(10),
            max_read_retries: 64,
            client_node_visit: SimDuration::from_micros(2),
            cache_levels: 0,
            node_cache_ttl: SimDuration::from_millis(10),
            node_cache_capacity: 4096,
            max_batch: 16,
            batch_window: SimDuration::from_millis(1),
            request_timeout: SimDuration::from_secs(1),
            max_retries: 16,
            retry_backoff: SimDuration::from_micros(100),
            retry_backoff_max: SimDuration::from_millis(100),
            fetch_poll_initial: SimDuration::from_micros(4),
            fetch_poll_max: SimDuration::from_micros(256),
        }
    }
}

/// A complete experiment scheme, as labelled in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Socket baseline over the profile's TCP stack.
    TcpIp,
    /// FaRM-style fast messaging only (ring buffers, server traversal).
    FastMessaging,
    /// FaRM-style offloading only (client traversal, sequential reads).
    RdmaOffloading,
    /// Full Catfish: event-driven server, multi-issue offloading,
    /// adaptive switching.
    Catfish,
}

impl Scheme {
    /// Figure label.
    pub fn label(&self, profile: &NetProfile) -> String {
        match self {
            Scheme::TcpIp => format!("TCP/IP-{}", profile.name),
            Scheme::FastMessaging => "Fast messaging".to_string(),
            Scheme::RdmaOffloading => "RDMA offloading".to_string(),
            Scheme::Catfish => "Catfish".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let a = AdaptiveParams::default();
        assert_eq!(a.n_backoff, 8);
        assert_eq!(a.busy_threshold, 0.95);
        assert_eq!(a.heartbeat_interval, SimDuration::from_millis(10));
        assert!(a.stale_after_intervals >= 2, "failsafe must outlast jitter");
        assert!(
            a.stale_recovery_intervals >= 1,
            "unfreezing needs at least one fresh heartbeat"
        );
        let c = ClientConfig::default();
        assert!(c.request_timeout >= SimDuration::from_millis(100));
        assert!(c.max_retries >= 1);
        let s = ServerConfig::default();
        assert_eq!(s.cores, 28);
        assert_eq!(s.ring_capacity, 256 * 1024);
        // The RFP crossover must exist: fetching trades a higher fixed
        // deposit cost for a much cheaper per-byte slope, so each mode
        // wins on its own side of the crossover.
        assert!(s.cost.deposit > s.cost.post);
        assert!(s.cost.post_per_kb > s.cost.deposit_per_kb);
        assert!(s.mailbox_slots > 0);
        assert!(s.mailbox_slot_bytes > 16);
        assert!(s.mailbox_lease_ttl >= a.heartbeat_interval);
        assert!(s.dedup_window >= 64, "dedup must cover a retry burst");
        assert!(!a.fetch_enabled, "three-way policy is opt-in");
    }

    #[test]
    fn scheme_labels() {
        let ib = catfish_rdma::profile::infiniband_100g();
        assert_eq!(Scheme::Catfish.label(&ib), "Catfish");
        assert_eq!(Scheme::TcpIp.label(&ib), "TCP/IP-100G InfiniBand");
    }
}
