//! The Catfish R-tree client: the R\*-tree's [`ClientBackend`] port onto
//! the generic [`ServiceClient`] engine, plus the R-tree-specific kNN
//! operations.
//!
//! Path routing (Algorithm 1), the ring request/response sequencing, and
//! the offloaded traversal engine (sequential and multi-issue, §IV-C) all
//! live in [`crate::service`]; this module contributes only how a search
//! rectangle expands one fetched node, and the best-first kNN that cannot
//! be expressed as a plain frontier traversal.

use catfish_rtree::{min_dist_sq, Node, NodeId, Rect};
use catfish_simnet::sleep;

use crate::msg::Message;
use crate::server::RtreeBackend;
use crate::service::{ClientBackend, ClusterClient, Inconsistent, OpKind, ServiceClient};

pub use crate::service::SearchPath;

/// The Catfish R-tree client.
pub type CatfishClient = ServiceClient<RtreeBackend>;

/// A scatter-gather client over a sharded R-tree cluster.
pub type CatfishClusterClient = ClusterClient<RtreeBackend>;

impl ClientBackend for RtreeBackend {
    type Read = Rect;

    fn read_request(seq: u32, read: &Rect) -> Message {
        Message::SearchReq { seq, rect: *read }
    }

    /// Intersects a node against the query, pushing full `(mbr, payload)`
    /// hits to `items` and intersecting children (with their expected
    /// level) to `children`.
    fn expand(
        read: &Rect,
        node: &Node,
        items: &mut Vec<(Rect, u64)>,
        children: &mut Vec<(NodeId, u32)>,
    ) -> Result<(), Inconsistent> {
        for e in &node.entries {
            if !e.mbr.intersects(read) {
                continue;
            }
            match e.child {
                catfish_rtree::EntryRef::Data(d) => {
                    if node.level != 0 {
                        return Err(Inconsistent);
                    }
                    items.push((e.mbr, d));
                }
                catfish_rtree::EntryRef::Node(c) => {
                    if node.level == 0 {
                        return Err(Inconsistent);
                    }
                    children.push((c, node.level - 1));
                }
            }
        }
        Ok(())
    }
}

impl ServiceClient<RtreeBackend> {
    /// Searches for all items intersecting `rect`, choosing the execution
    /// path per the configured [`crate::config::AccessMode`]. Returns the
    /// payload ids.
    pub async fn search(&mut self, rect: &Rect) -> Vec<u64> {
        self.search_traced(rect).await.0
    }

    /// Like [`CatfishClient::search`], also reporting which path ran.
    pub async fn search_traced(&mut self, rect: &Rect) -> (Vec<u64>, SearchPath) {
        let (items, path) = self.read_traced(rect).await;
        (items.into_iter().map(|(_, d)| d).collect(), path)
    }

    /// Inserts an item; write requests always travel through the ring and
    /// are executed by server threads (paper §III-B).
    pub async fn insert(&mut self, rect: Rect, data: u64) -> bool {
        self.write_request(OpKind::Write, |seq| Message::InsertReq { seq, rect, data })
            .await
            .0
            == 1
    }

    /// Deletes the exact item `(rect, data)` through the server.
    pub async fn delete(&mut self, rect: Rect, data: u64) -> bool {
        self.write_request(OpKind::Remove, |seq| Message::DeleteReq { seq, rect, data })
            .await
            .0
            == 1
    }

    /// Finds the `k` items nearest to `(x, y)`, in increasing distance
    /// order, served by the server through fast messaging.
    pub async fn nearest(&mut self, x: f64, y: f64, k: u32) -> Vec<(Rect, u64)> {
        self.drain_pending();
        let opened = self.op_begin();
        let out = self
            .fast_request(|seq| Message::NearestReq { seq, x, y, k })
            .await
            .1;
        self.op_end(opened);
        out
    }

    /// Offloaded kNN: best-first search executed entirely with one-sided
    /// reads. Unlike range searches, kNN's priority queue serializes the
    /// fetches (each expansion depends on the globally nearest frontier
    /// node), so every expansion costs a round trip — it trades latency for
    /// zero server CPU. Falls back to the server after repeated
    /// inconsistencies.
    pub async fn nearest_offloaded(&mut self, x: f64, y: f64, k: u32) -> Vec<(Rect, u64)> {
        self.drain_pending();
        let opened = self.op_begin();
        let off_start = if opened {
            Some(self.span.now_ns())
        } else {
            None
        };
        for _ in 0..8 {
            match self.nearest_attempt(x, y, k).await {
                Ok(out) => {
                    self.end_offload_span(off_start);
                    self.op_end(opened);
                    return out;
                }
                Err(Inconsistent) => {
                    self.stats.offload_restarts += 1;
                    self.meta_cache = None;
                    self.node_cache.clear();
                }
            }
        }
        // Fall back to the server path; its request still carries this
        // op's context, so the server spans land in the same tree.
        self.end_offload_span(off_start);
        let out = self.nearest(x, y, k).await;
        self.op_end(opened);
        out
    }

    async fn nearest_attempt(
        &mut self,
        x: f64,
        y: f64,
        k: u32,
    ) -> Result<Vec<(Rect, u64)>, Inconsistent> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let meta = self.read_meta().await;
        let Some(root) = meta.root else {
            return Ok(Vec::new());
        };
        // Min-heap over (distance, tiebreak): OrderedF64 via bit tricks —
        // distances are finite and non-negative, so the IEEE bit pattern
        // orders identically to the value.
        let key = |d: f64| d.to_bits();
        let mut heap: BinaryHeap<Reverse<(u64, u64, HeapEntry)>> = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(Reverse((
            key(0.0),
            seq,
            HeapEntry::Node(root, meta.height - 1),
        )));
        let fetched_before = self.stats.chunks_fetched;
        let mut out = Vec::with_capacity(k as usize);
        'search: while let Some(Reverse((_, _, entry))) = heap.pop() {
            match entry {
                HeapEntry::Item(rect, data) => {
                    out.push((rect.into(), data));
                    if out.len() == k as usize {
                        break 'search;
                    }
                }
                HeapEntry::Node(id, level) => {
                    let node = self.fetch_node(id).await?;
                    if node.level != level {
                        return Err(Inconsistent);
                    }
                    sleep(self.cfg.client_node_visit).await;
                    for e in &node.entries {
                        let d = catfish_rtree::min_dist_sq(&e.mbr, x, y);
                        seq += 1;
                        match e.child {
                            catfish_rtree::EntryRef::Data(data) => {
                                if node.level != 0 {
                                    return Err(Inconsistent);
                                }
                                heap.push(Reverse((
                                    key(d),
                                    seq,
                                    HeapEntry::Item(e.mbr.into(), data),
                                )));
                            }
                            catfish_rtree::EntryRef::Node(c) => {
                                if node.level == 0 {
                                    return Err(Inconsistent);
                                }
                                heap.push(Reverse((
                                    key(d),
                                    seq,
                                    HeapEntry::Node(c, node.level - 1),
                                )));
                            }
                        }
                    }
                }
            }
        }
        // Multi-chunk traversals must confirm no structural change moved
        // entries between the chunks mid-read (same rule as range reads).
        if self.stats.chunks_fetched - fetched_before >= 2 {
            let fresh = self.refresh_meta().await;
            if fresh.structure_version != meta.structure_version {
                return Err(Inconsistent);
            }
        }
        Ok(out)
    }
}

// Scatter legs each borrow a *different* shard's client cell, and the
// simulator is single-threaded cooperative, so a borrow held across an
// await can only conflict with re-entrant use of the same shard client —
// the same (accepted) sharing rule as everywhere else in the sim.
#[allow(clippy::await_holding_refcell_ref)]
impl ClusterClient<RtreeBackend> {
    /// Searches for all items intersecting `rect` across the cluster:
    /// routed to one shard when only one boundary MBR intersects (the
    /// common case for point-ish queries), otherwise scattered in parallel
    /// over the intersecting shards and concatenated — shards own disjoint
    /// item sets, so the union needs no dedup.
    pub async fn search(&self, rect: &Rect) -> Vec<u64> {
        let targets = self.map.read_targets(rect);
        match targets.len() {
            0 => Vec::new(),
            1 => self.read_conn(targets[0]).borrow_mut().search(rect).await,
            _ => {
                let rect = *rect;
                let root = self.begin_scatter_root(&targets);
                let parts = self
                    .scatter(&targets, move |shard| {
                        Box::pin(async move { shard.borrow_mut().search(&rect).await })
                    })
                    .await;
                let merge_start = self.span.now_ns();
                let out = parts.into_iter().flatten().collect();
                self.end_scatter_root(root, merge_start);
                out
            }
        }
    }

    /// Inserts an item on its home shard, widening that shard's boundary
    /// MBR first so a scatter issued after this call can already see it.
    pub async fn insert(&mut self, rect: Rect, data: u64) -> bool {
        let home = self.map.home_shard(&rect);
        self.map.grow(home, &rect);
        self.replicated_write(home, OpKind::Write, |seq| Message::InsertReq {
            seq,
            rect,
            data,
        })
        .await
        .0 == 1
    }

    /// Deletes the exact item `(rect, data)` from its home shard. The
    /// shard's bound is left as-is (bounds only grow — a stale-wide bound
    /// merely costs an extra scatter target, never correctness).
    pub async fn delete(&mut self, rect: Rect, data: u64) -> bool {
        let home = self.map.home_shard(&rect);
        self.replicated_write(home, OpKind::Remove, |seq| Message::DeleteReq {
            seq,
            rect,
            data,
        })
        .await
        .0 == 1
    }

    /// Cluster kNN: every occupied shard answers its local k nearest in
    /// parallel, and the partials merge by true distance. Local top-k is
    /// sufficient — any global winner is also among its own shard's k
    /// nearest — so the merge is exact without a second round.
    pub async fn nearest(&self, x: f64, y: f64, k: u32) -> Vec<(Rect, u64)> {
        let targets = self.map.occupied();
        if targets.is_empty() {
            return Vec::new();
        }
        let root = self.begin_scatter_root(&targets);
        let parts = self
            .scatter(&targets, move |shard| {
                Box::pin(async move { shard.borrow_mut().nearest(x, y, k).await })
            })
            .await;
        let merge_start = self.span.now_ns();
        let mut all: Vec<(Rect, u64)> = parts.into_iter().flatten().collect();
        all.sort_by_key(|(r, d)| (min_dist_sq(r, x, y).to_bits(), *d));
        all.truncate(k as usize);
        self.end_scatter_root(root, merge_start);
        all
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum HeapEntry {
    Node(NodeId, u32),
    Item(RectBits, u64),
}

/// `Rect` is not `Ord` (floats); the heap orders by distance and sequence
/// only, so entries store the rectangle as raw bits for derivable ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct RectBits([u64; 4]);

impl From<Rect> for RectBits {
    fn from(r: Rect) -> Self {
        RectBits([
            r.min_x().to_bits(),
            r.min_y().to_bits(),
            r.max_x().to_bits(),
            r.max_y().to_bits(),
        ])
    }
}

impl From<RectBits> for Rect {
    fn from(b: RectBits) -> Self {
        Rect::new(
            f64::from_bits(b.0[0]),
            f64::from_bits(b.0[1]),
            f64::from_bits(b.0[2]),
            f64::from_bits(b.0[3]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccessMode, AdaptiveParams, ClientConfig, ServerConfig, ServerMode};
    use crate::conn::RkeyAllocator;
    use crate::server::CatfishServer;
    use catfish_rdma::profile::infiniband_100g;
    use catfish_rdma::{Endpoint, RdmaProfile};
    use catfish_rtree::RTreeConfig;
    use catfish_simnet::{now, Network, Sim, SimDuration};

    fn grid_items(n: u64) -> Vec<(Rect, u64)> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64 / 100.0;
                let y = (i / 100) as f64 / 100.0;
                (Rect::new(x, y, x + 0.005, y + 0.005), i)
            })
            .collect()
    }

    fn build(mode: AccessMode, multi_issue: bool) -> (CatfishServer, CatfishClient) {
        let net = Network::new();
        let profile = infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let server = CatfishServer::build(
            &net,
            &profile,
            ServerConfig {
                cores: 4,
                mode: ServerMode::EventDriven,
                ..ServerConfig::default()
            },
            RTreeConfig::default(),
            grid_items(2000),
            &rkeys,
        );
        let client_ep = Endpoint::new(&net, net.add_node(profile.link), RdmaProfile::default());
        let ch = server.accept(&client_ep);
        let client = CatfishClient::new(
            ch,
            server.remote_handle(),
            ClientConfig {
                mode,
                multi_issue,
                ..ClientConfig::default()
            },
            7,
        );
        (server, client)
    }

    fn expected(server: &CatfishServer, q: &Rect) -> Vec<u64> {
        let mut v = server.with_index(|t| t.search(q));
        v.sort_unstable();
        v
    }

    #[test]
    fn fast_messaging_search_is_correct() {
        let sim = Sim::new();
        sim.run_until(async {
            let (server, mut client) = build(AccessMode::FastMessaging, false);
            let q = Rect::new(0.1, 0.1, 0.2, 0.2);
            let mut got = client.search(&q).await;
            got.sort_unstable();
            assert_eq!(got, expected(&server, &q));
            assert!(!got.is_empty());
            assert_eq!(client.stats().fast_reads, 1);
            assert_eq!(client.stats().offloaded_reads, 0);
        });
    }

    #[test]
    fn offloaded_search_sequential_is_correct() {
        let sim = Sim::new();
        sim.run_until(async {
            let (server, mut client) = build(AccessMode::Offloading, false);
            let q = Rect::new(0.3, 0.3, 0.42, 0.42);
            let mut got = client.search(&q).await;
            got.sort_unstable();
            assert_eq!(got, expected(&server, &q));
            assert!(client.stats().chunks_fetched > 0);
            assert_eq!(client.stats().offloaded_reads, 1);
            // Server CPU untouched by offloaded reads.
            assert_eq!(server.stats().reads, 0);
        });
    }

    #[test]
    fn offloaded_search_multi_issue_is_correct_and_faster() {
        let sim = Sim::new();
        let (seq_time, mi_time) = sim.run_until(async {
            let (server, mut seq_client) = build(AccessMode::Offloading, false);
            // Wide query (the grid_items dataset spans y in [0, 0.2]):
            // many intersecting children per level.
            let q = Rect::new(0.2, 0.02, 0.5, 0.15);
            let t0 = now();
            let mut a = seq_client.search(&q).await;
            let seq_time = now() - t0;

            let client_ep = Endpoint::new(
                server.endpoint().network(),
                server.endpoint().network().add_node(infiniband_100g().link),
                RdmaProfile::default(),
            );
            let ch = server.accept(&client_ep);
            let mut mi_client = CatfishClient::new(
                ch,
                server.remote_handle(),
                ClientConfig {
                    mode: AccessMode::Offloading,
                    multi_issue: true,
                    ..ClientConfig::default()
                },
                8,
            );
            let t1 = now();
            let mut b = mi_client.search(&q).await;
            let mi_time = now() - t1;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert_eq!(a, expected(&server, &q));
            (seq_time, mi_time)
        });
        assert!(
            mi_time < seq_time,
            "multi-issue {mi_time} should beat sequential {seq_time}"
        );
    }

    #[test]
    fn insert_then_search_round_trip() {
        let sim = Sim::new();
        sim.run_until(async {
            let (server, mut client) = build(AccessMode::FastMessaging, false);
            let rect = Rect::new(0.77, 0.77, 0.772, 0.772);
            assert!(client.insert(rect, 555_000).await);
            let got = client.search(&rect).await;
            assert!(got.contains(&555_000));
            assert!(client.delete(rect, 555_000).await);
            assert!(!client.search(&rect).await.contains(&555_000));
            server.with_index(|t| t.check_invariants()).unwrap();
        });
    }

    #[test]
    fn offloaded_search_sees_items_inserted_via_ring() {
        let sim = Sim::new();
        sim.run_until(async {
            let (_server, mut client) = build(AccessMode::Offloading, true);
            // Inserts go through the ring even in offloading mode.
            let rect = Rect::new(0.88, 0.88, 0.882, 0.882);
            assert!(client.insert(rect, 777_000).await);
            // Invalidate the cached meta so the traversal sees the update.
            client.meta_cache = None;
            let got = client.search(&rect).await;
            assert!(got.contains(&777_000));
            assert!(client.stats().writes_sent == 1);
        });
    }

    #[test]
    fn adaptive_stays_fast_when_server_idle() {
        let sim = Sim::new();
        sim.run_until(async {
            let (server, mut client) = build(AccessMode::Adaptive(AdaptiveParams::default()), true);
            server.start_heartbeats();
            for _ in 0..20 {
                let q = Rect::new(0.4, 0.4, 0.45, 0.45);
                client.search(&q).await;
                sleep(SimDuration::from_millis(1)).await;
            }
            // An idle server never crosses T: everything stays fast.
            assert_eq!(client.stats().offloaded_reads, 0);
            assert_eq!(client.stats().fast_reads, 20);
        });
    }

    #[test]
    fn adaptive_offloads_when_server_reports_busy() {
        let sim = Sim::new();
        sim.run_until(async {
            let (_server, mut client) =
                build(AccessMode::Adaptive(AdaptiveParams::default()), true);
            // Inject a synthetic "busy" heartbeat and let Inv elapse
            // (including the client's randomized consumption phase).
            sleep(SimDuration::from_millis(25)).await;
            client.adaptive.note_heartbeat(0.99);
            let mut offloaded = 0;
            for _ in 0..16 {
                let (_, path) = client.search_traced(&Rect::new(0.4, 0.4, 0.41, 0.41)).await;
                if path == SearchPath::Offloaded {
                    offloaded += 1;
                }
            }
            assert!(
                offloaded > 0,
                "busy heartbeat must trigger at least some offloading"
            );
        });
    }

    #[test]
    fn backoff_band_grows_with_persistent_busyness() {
        let sim = Sim::new();
        sim.run_until(async {
            let (_server, mut client) =
                build(AccessMode::Adaptive(AdaptiveParams::default()), true);
            // Get past the client's randomized consumption phase, then
            // simulate repeated busy observations spaced by > Inv.
            sleep(SimDuration::from_millis(15)).await;
            let mut bands = Vec::new();
            for _ in 0..4 {
                sleep(SimDuration::from_millis(11)).await;
                client.adaptive.note_heartbeat(1.0);
                client.adaptive.decide();
                bands.push(client.adaptive.band());
            }
            // r_busy increments each time the fresh heartbeat says busy
            // while r_off is inside the current band.
            assert_eq!(bands[0].0, 1);
            assert!(
                bands.last().unwrap().0 >= 2,
                "band should escalate: {bands:?}"
            );
        });
    }

    #[test]
    fn heartbeats_are_consumed_from_ring() {
        let sim = Sim::new();
        sim.run_until(async {
            let (server, mut client) = build(AccessMode::Adaptive(AdaptiveParams::default()), true);
            server.start_heartbeats();
            sleep(SimDuration::from_millis(25)).await;
            client.drain_pending();
            // A recorded heartbeat becomes consumable by the next decide.
            sleep(SimDuration::from_millis(25)).await;
            client.adaptive.note_heartbeat(1.0);
            assert!(client.adaptive.decide() || client.adaptive.band().0 > 0);
        });
    }

    #[test]
    fn node_cache_expires_on_its_own_ttl() {
        let sim = Sim::new();
        sim.run_until(async {
            let (_server, mut client) = build(AccessMode::Offloading, false);
            client.cfg.cache_levels = 2;
            client.cfg.node_cache_ttl = SimDuration::from_millis(5);
            // The meta TTL is far longer; expiry must follow the node TTL.
            client.cfg.meta_cache_ttl = SimDuration::from_secs(60);
            let id = NodeId(1);
            client.cache_store(id, 3, 1, &Node::new(3));
            assert!(client.cache_lookup(id, 3, 1).is_some());
            sleep(SimDuration::from_millis(6)).await;
            assert!(client.cache_lookup(id, 3, 1).is_none());
            assert_eq!(client.stats().cache_hits, 1);
        });
    }

    #[test]
    fn node_cache_capacity_evicts_stalest() {
        let sim = Sim::new();
        sim.run_until(async {
            let (_server, mut client) = build(AccessMode::Offloading, false);
            client.cfg.cache_levels = 2;
            client.cfg.node_cache_capacity = 2;
            for i in 0..3u32 {
                client.cache_store(NodeId(i), 3, 1, &Node::new(3));
                sleep(SimDuration::from_millis(1)).await;
            }
            assert_eq!(client.node_cache.len(), 2);
            // The first (stalest) entry made way for the third.
            assert!(client.cache_lookup(NodeId(0), 3, 1).is_none());
            assert!(client.cache_lookup(NodeId(1), 3, 1).is_some());
            assert!(client.cache_lookup(NodeId(2), 3, 1).is_some());
            // Re-storing an already-cached id never evicts.
            client.cache_store(NodeId(2), 3, 1, &Node::new(3));
            assert!(client.cache_lookup(NodeId(1), 3, 1).is_some());
        });
    }
}
