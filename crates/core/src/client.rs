//! The Catfish client: fast messaging, RDMA-offloaded traversal with
//! multi-issue, and the adaptive back-off coordination (Algorithm 1).

use std::collections::HashMap;

use catfish_rtree::codec::CodecError;
use catfish_rtree::{Node, NodeId, Rect, TreeMeta};
use catfish_simnet::{now, sleep, spawn, CpuPool, SimTime};

use crate::adaptive::AdaptiveState;
use crate::config::{AccessMode, ClientConfig};
use crate::conn::ClientChannel;
use crate::msg::Message;
use crate::server::TreeHandle;

/// Per-client counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Searches executed through fast messaging.
    pub fast_searches: u64,
    /// Searches executed through RDMA offloading.
    pub offloaded_searches: u64,
    /// Inserts sent (always fast messaging).
    pub inserts: u64,
    /// Deletes sent.
    pub deletes: u64,
    /// Chunk reads retried after version-validation failure (torn reads).
    pub torn_retries: u64,
    /// Metadata chunk reads.
    pub meta_refreshes: u64,
    /// Offloaded searches restarted after observing an inconsistent tree.
    pub offload_restarts: u64,
    /// Total chunks fetched by offloaded traversals.
    pub chunks_fetched: u64,
    /// Chunk reads avoided by the client-side level cache.
    pub cache_hits: u64,
}

/// Which path executed a search (for tests and diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchPath {
    /// Server-side traversal via the ring buffer.
    FastMessaging,
    /// Client-side traversal via one-sided reads.
    Offloaded,
}

enum ChunkReadError {
    /// Retries exhausted on torn reads.
    TooManyRetries,
    /// The chunk no longer decodes to a plausible node (stale pointer).
    Inconsistent,
}

/// A Catfish client bound to one connection.
pub struct CatfishClient {
    ch: ClientChannel,
    cfg: ClientConfig,
    tree: TreeHandle,
    seq: u32,
    adaptive: AdaptiveState,
    meta_cache: Option<(TreeMeta, SimTime)>,
    node_cache: HashMap<NodeId, (Node, SimTime)>,
    /// When set, responses are detected by busy-polling a core of this
    /// (client-machine) pool, FaRM-style, instead of blocking on the
    /// completion channel — the client-side half of the oversubscription
    /// collapse in paper Fig. 7.
    poll_pool: Option<CpuPool>,
    stats: ClientStats,
}

impl std::fmt::Debug for CatfishClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatfishClient")
            .field("seq", &self.seq)
            .field("adaptive", &self.adaptive)
            .finish()
    }
}

impl CatfishClient {
    /// Creates a client over an established channel. `seed` drives the
    /// back-off randomization.
    pub fn new(ch: ClientChannel, tree: TreeHandle, cfg: ClientConfig, seed: u64) -> Self {
        let params = match cfg.mode {
            AccessMode::Adaptive(p) => p,
            _ => Default::default(),
        };
        CatfishClient {
            ch,
            cfg,
            tree,
            seq: 0,
            adaptive: AdaptiveState::new(params, seed),
            meta_cache: None,
            node_cache: HashMap::new(),
            poll_pool: None,
            stats: ClientStats::default(),
        }
    }

    /// Switches response detection to busy-polling on a core of `pool`
    /// (the client machine's CPUs). With more client threads per machine
    /// than cores, response pickup waits for the thread's next scheduling
    /// turn — reproducing the client-side half of Fig. 7's collapse.
    pub fn with_response_polling(mut self, pool: CpuPool) -> Self {
        self.poll_pool = Some(pool);
        self
    }

    /// Receives the next ring message, either event-driven (block on the
    /// completion channel, off-CPU) or by holding a core and polling.
    async fn recv_ring_message(&mut self) -> Vec<u8> {
        match self.poll_pool.clone() {
            None => self.ch.rx.wait_message().await,
            Some(pool) => loop {
                let quantum = pool.quantum();
                let core = pool.acquire().await;
                let got = self.ch.rx.wait_message_until(now() + quantum).await;
                drop(core);
                if let Some(bytes) = got {
                    return bytes;
                }
                // Turn expired without a message: requeue behind the other
                // polling threads on this machine.
                catfish_simnet::yield_now().await;
            },
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Searches for all items intersecting `rect`, choosing the execution
    /// path per the configured [`AccessMode`]. Returns the payload ids.
    pub async fn search(&mut self, rect: &Rect) -> Vec<u64> {
        self.search_traced(rect).await.0
    }

    /// Like [`CatfishClient::search`], also reporting which path ran.
    pub async fn search_traced(&mut self, rect: &Rect) -> (Vec<u64>, SearchPath) {
        self.drain_pending();
        let offload = match self.cfg.mode {
            AccessMode::FastMessaging => false,
            AccessMode::Offloading => true,
            AccessMode::Adaptive(_) => self.adaptive.decide(),
        };
        if offload {
            self.stats.offloaded_searches += 1;
            (self.offload_search(rect).await, SearchPath::Offloaded)
        } else {
            self.stats.fast_searches += 1;
            (self.fast_search(rect).await, SearchPath::FastMessaging)
        }
    }

    /// Inserts an item; write requests always travel through the ring and
    /// are executed by server threads (paper §III-B).
    pub async fn insert(&mut self, rect: Rect, data: u64) -> bool {
        self.drain_pending();
        self.stats.inserts += 1;
        self.seq += 1;
        let seq = self.seq;
        self.ch
            .tx
            .send(&Message::InsertReq { seq, rect, data }.encode(), seq)
            .await;
        self.wait_write_ack(seq).await
    }

    /// Finds the `k` items nearest to `(x, y)`, in increasing distance
    /// order, served by the server through fast messaging.
    pub async fn nearest(&mut self, x: f64, y: f64, k: u32) -> Vec<(Rect, u64)> {
        self.drain_pending();
        self.seq += 1;
        let seq = self.seq;
        self.ch
            .tx
            .send(&Message::NearestReq { seq, x, y, k }.encode(), seq)
            .await;
        let mut out = Vec::new();
        loop {
            let bytes = self.recv_ring_message().await;
            match Message::decode(&bytes) {
                Ok(m @ Message::Heartbeat { .. }) => self.note(&m),
                Ok(Message::ResponseCont { seq: s, results }) if s == seq => {
                    out.extend(results);
                }
                Ok(Message::ResponseEnd {
                    seq: s, results, ..
                }) if s == seq => {
                    out.extend(results);
                    return out;
                }
                _ => {}
            }
        }
    }

    /// Offloaded kNN: best-first search executed entirely with one-sided
    /// reads. Unlike range searches, kNN's priority queue serializes the
    /// fetches (each expansion depends on the globally nearest frontier
    /// node), so every expansion costs a round trip — it trades latency for
    /// zero server CPU. Falls back to the server after repeated
    /// inconsistencies.
    pub async fn nearest_offloaded(&mut self, x: f64, y: f64, k: u32) -> Vec<(Rect, u64)> {
        self.drain_pending();
        for _ in 0..8 {
            match self.nearest_attempt(x, y, k).await {
                Ok(out) => return out,
                Err(()) => {
                    self.stats.offload_restarts += 1;
                    self.meta_cache = None;
                    self.node_cache.clear();
                }
            }
        }
        self.nearest(x, y, k).await
    }

    async fn nearest_attempt(&mut self, x: f64, y: f64, k: u32) -> Result<Vec<(Rect, u64)>, ()> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let meta = self.read_meta().await;
        let Some(root) = meta.root else {
            return Ok(Vec::new());
        };
        // Min-heap over (distance, tiebreak): OrderedF64 via bit tricks —
        // distances are finite and non-negative, so the IEEE bit pattern
        // orders identically to the value.
        let key = |d: f64| d.to_bits();
        let mut heap: BinaryHeap<Reverse<(u64, u64, HeapEntry)>> = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(Reverse((
            key(0.0),
            seq,
            HeapEntry::Node(root, meta.height - 1),
        )));
        let mut out = Vec::with_capacity(k as usize);
        while let Some(Reverse((_, _, entry))) = heap.pop() {
            match entry {
                HeapEntry::Item(rect, data) => {
                    out.push((rect.into(), data));
                    if out.len() == k as usize {
                        return Ok(out);
                    }
                }
                HeapEntry::Node(id, level) => {
                    let node = self.fetch_chunk(id).await?;
                    if node.level != level {
                        return Err(());
                    }
                    sleep(self.cfg.client_node_visit).await;
                    for e in &node.entries {
                        let d = catfish_rtree::min_dist_sq(&e.mbr, x, y);
                        seq += 1;
                        match e.child {
                            catfish_rtree::EntryRef::Data(data) => {
                                if node.level != 0 {
                                    return Err(());
                                }
                                heap.push(Reverse((
                                    key(d),
                                    seq,
                                    HeapEntry::Item(e.mbr.into(), data),
                                )));
                            }
                            catfish_rtree::EntryRef::Node(c) => {
                                if node.level == 0 {
                                    return Err(());
                                }
                                heap.push(Reverse((
                                    key(d),
                                    seq,
                                    HeapEntry::Node(c, node.level - 1),
                                )));
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Deletes the exact item `(rect, data)` through the server.
    pub async fn delete(&mut self, rect: Rect, data: u64) -> bool {
        self.drain_pending();
        self.stats.deletes += 1;
        self.seq += 1;
        let seq = self.seq;
        self.ch
            .tx
            .send(&Message::DeleteReq { seq, rect, data }.encode(), seq)
            .await;
        self.wait_write_ack(seq).await
    }

    /// Consumes everything already sitting in the response ring —
    /// primarily heartbeats accumulated while the client was offloading.
    fn drain_pending(&mut self) {
        while let Some(bytes) = self.ch.rx.try_pop() {
            if let Ok(Message::Heartbeat { util_permille }) = Message::decode(&bytes) {
                self.adaptive
                    .note_heartbeat(f64::from(util_permille) / 1000.0);
            }
        }
    }

    fn note(&mut self, msg: &Message) {
        if let Message::Heartbeat { util_permille } = msg {
            self.adaptive
                .note_heartbeat(f64::from(*util_permille) / 1000.0);
        }
    }

    // ------------------------------------------------------------------
    // Fast messaging
    // ------------------------------------------------------------------

    async fn fast_search(&mut self, rect: &Rect) -> Vec<u64> {
        self.seq += 1;
        let seq = self.seq;
        self.ch
            .tx
            .send(&Message::SearchReq { seq, rect: *rect }.encode(), seq)
            .await;
        let mut out = Vec::new();
        loop {
            let bytes = self.recv_ring_message().await;
            match Message::decode(&bytes) {
                Ok(m @ Message::Heartbeat { .. }) => self.note(&m),
                Ok(Message::ResponseCont { seq: s, results }) if s == seq => {
                    out.extend(results.iter().map(|(_, d)| *d));
                }
                Ok(Message::ResponseEnd {
                    seq: s, results, ..
                }) if s == seq => {
                    out.extend(results.iter().map(|(_, d)| *d));
                    return out;
                }
                // Stale or unexpected messages are dropped.
                _ => {}
            }
        }
    }

    async fn wait_write_ack(&mut self, seq: u32) -> bool {
        loop {
            let bytes = self.recv_ring_message().await;
            match Message::decode(&bytes) {
                Ok(m @ Message::Heartbeat { .. }) => self.note(&m),
                Ok(Message::ResponseEnd { seq: s, status, .. }) if s == seq => {
                    return status == 1;
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // RDMA offloading
    // ------------------------------------------------------------------

    async fn offload_search(&mut self, rect: &Rect) -> Vec<u64> {
        let mut attempts = 0u32;
        loop {
            match self.offload_attempt(rect).await {
                Ok(results) => return results,
                Err(()) => {
                    self.stats.offload_restarts += 1;
                    self.meta_cache = None;
                    self.node_cache.clear();
                    attempts += 1;
                    if attempts >= 8 {
                        // The tree is churning faster than we can traverse
                        // it; fall back to the server's consistent view.
                        return self.fast_search(rect).await;
                    }
                }
            }
        }
    }

    /// One traversal attempt; `Err(())` means an inconsistency was
    /// observed (stale root, level mismatch, undecodable chunk).
    async fn offload_attempt(&mut self, rect: &Rect) -> Result<Vec<u64>, ()> {
        let meta = self.read_meta().await;
        let Some(root) = meta.root else {
            return Ok(Vec::new());
        };
        // Nodes at or above this level may be served from the client-side
        // cache (internal top levels only; leaves are never cached).
        let cache_floor = meta.height.saturating_sub(self.cfg.cache_levels).max(1);
        if self.cfg.multi_issue {
            self.traverse_multi_issue(rect, root, meta.height - 1, cache_floor)
                .await
        } else {
            self.traverse_sequential(rect, root, meta.height - 1, cache_floor)
                .await
        }
    }

    /// Consults the level cache for a node at `level`; `cache_floor` is
    /// the lowest cacheable level.
    fn cache_lookup(&mut self, id: NodeId, level: u32, cache_floor: u32) -> Option<Node> {
        if self.cfg.cache_levels == 0 || level < cache_floor {
            return None;
        }
        let (node, at) = self.node_cache.get(&id)?;
        if now().saturating_duration_since(*at) > self.cfg.node_cache_ttl {
            return None;
        }
        self.stats.cache_hits += 1;
        Some(node.clone())
    }

    fn cache_store(&mut self, id: NodeId, level: u32, cache_floor: u32, node: &Node) {
        if self.cfg.cache_levels == 0 || level < cache_floor || self.cfg.node_cache_capacity == 0 {
            return;
        }
        if self.node_cache.len() >= self.cfg.node_cache_capacity
            && !self.node_cache.contains_key(&id)
        {
            // Evict the stalest entry to stay within capacity.
            if let Some(oldest) = self
                .node_cache
                .iter()
                .min_by_key(|(_, (_, at))| *at)
                .map(|(id, _)| *id)
            {
                self.node_cache.remove(&oldest);
            }
        }
        self.node_cache.insert(id, (node.clone(), now()));
    }

    /// Sequential offloading (the paper's baseline): one outstanding RDMA
    /// read; every node access is a full round trip.
    async fn traverse_sequential(
        &mut self,
        rect: &Rect,
        root: NodeId,
        root_level: u32,
        cache_floor: u32,
    ) -> Result<Vec<u64>, ()> {
        let mut results = Vec::new();
        let mut queue: Vec<(NodeId, u32)> = vec![(root, root_level)];
        while let Some((id, level)) = queue.pop() {
            let node = match self.cache_lookup(id, level, cache_floor) {
                Some(node) => node,
                None => {
                    let node = self.fetch_chunk(id).await?;
                    self.cache_store(id, node.level, cache_floor, &node);
                    node
                }
            };
            if node.level != level {
                return Err(());
            }
            sleep(self.cfg.client_node_visit).await;
            collect_node(&node, rect, &mut results, &mut queue)?;
        }
        Ok(results)
    }

    /// Multi-issue offloading (§IV-C): all intersecting children of a
    /// processed node are fetched with concurrently issued reads, hiding
    /// round trips in a pipeline.
    async fn traverse_multi_issue(
        &mut self,
        rect: &Rect,
        root: NodeId,
        root_level: u32,
        cache_floor: u32,
    ) -> Result<Vec<u64>, ()> {
        let (tx, mut rx) = catfish_simnet::sync::channel();
        let mut inflight = 0usize;
        let qp = self.ch.qp.clone();
        let tree = self.tree;
        let retries = self.cfg.max_read_retries;
        let cache_tx = tx.clone();
        let issue = move |id: NodeId, level: u32, inflight: &mut usize| {
            let qp = qp.clone();
            let tx = tx.clone();
            *inflight += 1;
            spawn(async move {
                let got = read_chunk(&qp, &tree, id, retries).await;
                tx.send((id, level, got));
            });
        };
        // Dispatches through the cache when possible, else over the wire.
        let dispatch = |this: &mut Self, id: NodeId, level: u32, inflight: &mut usize| match this
            .cache_lookup(id, level, cache_floor)
        {
            Some(node) => {
                *inflight += 1;
                cache_tx.send((id, level, Ok((node, u32::MAX))));
            }
            None => issue(id, level, inflight),
        };
        dispatch(self, root, root_level, &mut inflight);
        let mut results = Vec::new();
        let mut failed = false;
        while inflight > 0 {
            let (id, level, got) = rx.recv().await.expect("sender held locally");
            inflight -= 1;
            if failed {
                continue; // drain remaining reads after failure
            }
            let (node, retries) = match got {
                Ok(v) => v,
                Err(_) => {
                    failed = true;
                    continue;
                }
            };
            // `u32::MAX` marks a cache-served node: no wire fetch happened.
            if retries != u32::MAX {
                self.stats.torn_retries += u64::from(retries);
                self.stats.chunks_fetched += 1;
            }
            if node.level != level {
                failed = true;
                continue;
            }
            self.cache_store(id, node.level, cache_floor, &node);
            sleep(self.cfg.client_node_visit).await;
            let mut children = Vec::new();
            if collect_node(&node, rect, &mut results, &mut children).is_err() {
                failed = true;
                continue;
            }
            for (child, child_level) in children {
                dispatch(self, child, child_level, &mut inflight);
            }
        }
        if failed {
            Err(())
        } else {
            Ok(results)
        }
    }

    /// Fetches and validates one chunk, counting retries.
    async fn fetch_chunk(&mut self, id: NodeId) -> Result<Node, ()> {
        match read_chunk(&self.ch.qp, &self.tree, id, self.cfg.max_read_retries).await {
            Ok((node, retries)) => {
                self.stats.torn_retries += u64::from(retries);
                self.stats.chunks_fetched += 1;
                Ok(node)
            }
            Err(_) => Err(()),
        }
    }

    /// Reads (and caches) the tree metadata from chunk 0.
    async fn read_meta(&mut self) -> TreeMeta {
        let t = now();
        if let Some((m, at)) = self.meta_cache {
            if t.saturating_duration_since(at) <= self.cfg.meta_cache_ttl {
                return m;
            }
        }
        loop {
            let bytes = self
                .ch
                .qp
                .read(self.tree.rkey, 0, self.tree.layout.chunk_bytes())
                .await
                .expect("tree arena registered");
            match self.tree.layout.decode_meta(&bytes) {
                Ok((m, _)) => {
                    self.stats.meta_refreshes += 1;
                    self.meta_cache = Some((m, now()));
                    return m;
                }
                Err(CodecError::TornRead { .. }) => {
                    self.stats.torn_retries += 1;
                }
                Err(CodecError::Malformed(what)) => {
                    panic!("tree metadata chunk is corrupt: {what}")
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum HeapEntry {
    Node(NodeId, u32),
    Item(RectBits, u64),
}

/// `Rect` is not `Ord` (floats); the heap orders by distance and sequence
/// only, so entries store the rectangle as raw bits for derivable ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct RectBits([u64; 4]);

impl From<Rect> for RectBits {
    fn from(r: Rect) -> Self {
        RectBits([
            r.min_x().to_bits(),
            r.min_y().to_bits(),
            r.max_x().to_bits(),
            r.max_y().to_bits(),
        ])
    }
}

impl From<RectBits> for Rect {
    fn from(b: RectBits) -> Self {
        Rect::new(
            f64::from_bits(b.0[0]),
            f64::from_bits(b.0[1]),
            f64::from_bits(b.0[2]),
            f64::from_bits(b.0[3]),
        )
    }
}

/// Intersects a node against the query, pushing leaf payloads to `results`
/// and intersecting children (with their expected level) to `children`.
fn collect_node(
    node: &Node,
    rect: &Rect,
    results: &mut Vec<u64>,
    children: &mut Vec<(NodeId, u32)>,
) -> Result<(), ()> {
    for e in &node.entries {
        if !e.mbr.intersects(rect) {
            continue;
        }
        match e.child {
            catfish_rtree::EntryRef::Data(d) => {
                if node.level != 0 {
                    return Err(());
                }
                results.push(d);
            }
            catfish_rtree::EntryRef::Node(c) => {
                if node.level == 0 {
                    return Err(());
                }
                children.push((c, node.level - 1));
            }
        }
    }
    Ok(())
}

/// One validated chunk read with torn-read retries.
async fn read_chunk(
    qp: &catfish_rdma::QueuePair,
    tree: &TreeHandle,
    id: NodeId,
    max_retries: u32,
) -> Result<(Node, u32), ChunkReadError> {
    let mut retries = 0u32;
    loop {
        let bytes = qp
            .read(
                tree.rkey,
                tree.layout.node_offset(id),
                tree.layout.chunk_bytes(),
            )
            .await
            .expect("tree arena registered");
        match tree.layout.decode_node(&bytes) {
            Ok((node, _version)) => return Ok((node, retries)),
            Err(CodecError::TornRead { .. }) => {
                retries += 1;
                if retries > max_retries {
                    return Err(ChunkReadError::TooManyRetries);
                }
            }
            Err(CodecError::Malformed(_)) => return Err(ChunkReadError::Inconsistent),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdaptiveParams, ServerConfig, ServerMode};
    use crate::conn::RkeyAllocator;
    use crate::server::CatfishServer;
    use catfish_rdma::profile::infiniband_100g;
    use catfish_rdma::{Endpoint, RdmaProfile};
    use catfish_rtree::RTreeConfig;
    use catfish_simnet::{Network, Sim, SimDuration};

    fn grid_items(n: u64) -> Vec<(Rect, u64)> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64 / 100.0;
                let y = (i / 100) as f64 / 100.0;
                (Rect::new(x, y, x + 0.005, y + 0.005), i)
            })
            .collect()
    }

    fn build(mode: AccessMode, multi_issue: bool) -> (CatfishServer, CatfishClient) {
        let net = Network::new();
        let profile = infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let server = CatfishServer::build(
            &net,
            &profile,
            ServerConfig {
                cores: 4,
                mode: ServerMode::EventDriven,
                ..ServerConfig::default()
            },
            RTreeConfig::default(),
            grid_items(2000),
            &rkeys,
        );
        let client_ep = Endpoint::new(&net, net.add_node(profile.link), RdmaProfile::default());
        let ch = server.accept(&client_ep);
        let client = CatfishClient::new(
            ch,
            server.tree_handle(),
            ClientConfig {
                mode,
                multi_issue,
                ..ClientConfig::default()
            },
            7,
        );
        (server, client)
    }

    fn expected(server: &CatfishServer, q: &Rect) -> Vec<u64> {
        let mut v = server.with_tree(|t| t.search(q));
        v.sort_unstable();
        v
    }

    #[test]
    fn fast_messaging_search_is_correct() {
        let sim = Sim::new();
        sim.run_until(async {
            let (server, mut client) = build(AccessMode::FastMessaging, false);
            let q = Rect::new(0.1, 0.1, 0.2, 0.2);
            let mut got = client.search(&q).await;
            got.sort_unstable();
            assert_eq!(got, expected(&server, &q));
            assert!(!got.is_empty());
            assert_eq!(client.stats().fast_searches, 1);
            assert_eq!(client.stats().offloaded_searches, 0);
        });
    }

    #[test]
    fn offloaded_search_sequential_is_correct() {
        let sim = Sim::new();
        sim.run_until(async {
            let (server, mut client) = build(AccessMode::Offloading, false);
            let q = Rect::new(0.3, 0.3, 0.42, 0.42);
            let mut got = client.search(&q).await;
            got.sort_unstable();
            assert_eq!(got, expected(&server, &q));
            assert!(client.stats().chunks_fetched > 0);
            assert_eq!(client.stats().offloaded_searches, 1);
            // Server CPU untouched by offloaded reads.
            assert_eq!(server.stats().searches, 0);
        });
    }

    #[test]
    fn offloaded_search_multi_issue_is_correct_and_faster() {
        let sim = Sim::new();
        let (seq_time, mi_time) = sim.run_until(async {
            let (server, mut seq_client) = build(AccessMode::Offloading, false);
            // Wide query (the grid_items dataset spans y in [0, 0.2]):
            // many intersecting children per level.
            let q = Rect::new(0.2, 0.02, 0.5, 0.15);
            let t0 = now();
            let mut a = seq_client.search(&q).await;
            let seq_time = now() - t0;

            let client_ep = Endpoint::new(
                server.endpoint().network(),
                server.endpoint().network().add_node(infiniband_100g().link),
                RdmaProfile::default(),
            );
            let ch = server.accept(&client_ep);
            let mut mi_client = CatfishClient::new(
                ch,
                server.tree_handle(),
                ClientConfig {
                    mode: AccessMode::Offloading,
                    multi_issue: true,
                    ..ClientConfig::default()
                },
                8,
            );
            let t1 = now();
            let mut b = mi_client.search(&q).await;
            let mi_time = now() - t1;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert_eq!(a, expected(&server, &q));
            (seq_time, mi_time)
        });
        assert!(
            mi_time < seq_time,
            "multi-issue {mi_time} should beat sequential {seq_time}"
        );
    }

    #[test]
    fn insert_then_search_round_trip() {
        let sim = Sim::new();
        sim.run_until(async {
            let (server, mut client) = build(AccessMode::FastMessaging, false);
            let rect = Rect::new(0.77, 0.77, 0.772, 0.772);
            assert!(client.insert(rect, 555_000).await);
            let got = client.search(&rect).await;
            assert!(got.contains(&555_000));
            assert!(client.delete(rect, 555_000).await);
            assert!(!client.search(&rect).await.contains(&555_000));
            server.with_tree(|t| t.check_invariants()).unwrap();
        });
    }

    #[test]
    fn offloaded_search_sees_items_inserted_via_ring() {
        let sim = Sim::new();
        sim.run_until(async {
            let (_server, mut client) = build(AccessMode::Offloading, true);
            // Inserts go through the ring even in offloading mode.
            let rect = Rect::new(0.88, 0.88, 0.882, 0.882);
            assert!(client.insert(rect, 777_000).await);
            // Invalidate the cached meta so the traversal sees the update.
            client.meta_cache = None;
            let got = client.search(&rect).await;
            assert!(got.contains(&777_000));
            assert!(client.stats().inserts == 1);
        });
    }

    #[test]
    fn adaptive_stays_fast_when_server_idle() {
        let sim = Sim::new();
        sim.run_until(async {
            let (server, mut client) = build(AccessMode::Adaptive(AdaptiveParams::default()), true);
            server.start_heartbeats();
            for _ in 0..20 {
                let q = Rect::new(0.4, 0.4, 0.45, 0.45);
                client.search(&q).await;
                sleep(SimDuration::from_millis(1)).await;
            }
            // An idle server never crosses T: everything stays fast.
            assert_eq!(client.stats().offloaded_searches, 0);
            assert_eq!(client.stats().fast_searches, 20);
        });
    }

    #[test]
    fn adaptive_offloads_when_server_reports_busy() {
        let sim = Sim::new();
        sim.run_until(async {
            let (_server, mut client) =
                build(AccessMode::Adaptive(AdaptiveParams::default()), true);
            // Inject a synthetic "busy" heartbeat and let Inv elapse
            // (including the client's randomized consumption phase).
            sleep(SimDuration::from_millis(25)).await;
            client.adaptive.note_heartbeat(0.99);
            let mut offloaded = 0;
            for _ in 0..16 {
                let (_, path) = client.search_traced(&Rect::new(0.4, 0.4, 0.41, 0.41)).await;
                if path == SearchPath::Offloaded {
                    offloaded += 1;
                }
            }
            assert!(
                offloaded > 0,
                "busy heartbeat must trigger at least some offloading"
            );
        });
    }

    #[test]
    fn backoff_band_grows_with_persistent_busyness() {
        let sim = Sim::new();
        sim.run_until(async {
            let (_server, mut client) =
                build(AccessMode::Adaptive(AdaptiveParams::default()), true);
            // Get past the client's randomized consumption phase, then
            // simulate repeated busy observations spaced by > Inv.
            sleep(SimDuration::from_millis(15)).await;
            let mut bands = Vec::new();
            for _ in 0..4 {
                sleep(SimDuration::from_millis(11)).await;
                client.adaptive.note_heartbeat(1.0);
                client.adaptive.decide();
                bands.push(client.adaptive.band());
            }
            // r_busy increments each time the fresh heartbeat says busy
            // while r_off is inside the current band.
            assert_eq!(bands[0].0, 1);
            assert!(
                bands.last().unwrap().0 >= 2,
                "band should escalate: {bands:?}"
            );
        });
    }

    #[test]
    fn heartbeats_are_consumed_from_ring() {
        let sim = Sim::new();
        sim.run_until(async {
            let (server, mut client) = build(AccessMode::Adaptive(AdaptiveParams::default()), true);
            server.start_heartbeats();
            sleep(SimDuration::from_millis(25)).await;
            client.drain_pending();
            // A recorded heartbeat becomes consumable by the next decide.
            sleep(SimDuration::from_millis(25)).await;
            client.adaptive.note_heartbeat(1.0);
            assert!(client.adaptive.decide() || client.adaptive.band().0 > 0);
        });
    }

    #[test]
    fn node_cache_expires_on_its_own_ttl() {
        let sim = Sim::new();
        sim.run_until(async {
            let (_server, mut client) = build(AccessMode::Offloading, false);
            client.cfg.cache_levels = 2;
            client.cfg.node_cache_ttl = SimDuration::from_millis(5);
            // The meta TTL is far longer; expiry must follow the node TTL.
            client.cfg.meta_cache_ttl = SimDuration::from_secs(60);
            let id = NodeId(1);
            client.cache_store(id, 3, 1, &Node::new(3));
            assert!(client.cache_lookup(id, 3, 1).is_some());
            sleep(SimDuration::from_millis(6)).await;
            assert!(client.cache_lookup(id, 3, 1).is_none());
            assert_eq!(client.stats().cache_hits, 1);
        });
    }

    #[test]
    fn node_cache_capacity_evicts_stalest() {
        let sim = Sim::new();
        sim.run_until(async {
            let (_server, mut client) = build(AccessMode::Offloading, false);
            client.cfg.cache_levels = 2;
            client.cfg.node_cache_capacity = 2;
            for i in 0..3u32 {
                client.cache_store(NodeId(i), 3, 1, &Node::new(3));
                sleep(SimDuration::from_millis(1)).await;
            }
            assert_eq!(client.node_cache.len(), 2);
            // The first (stalest) entry made way for the third.
            assert!(client.cache_lookup(NodeId(0), 3, 1).is_none());
            assert!(client.cache_lookup(NodeId(1), 3, 1).is_some());
            assert!(client.cache_lookup(NodeId(2), 3, 1).is_some());
            // Re-storing an already-cached id never evicts.
            client.cache_store(NodeId(2), 3, 1, &Node::new(3));
            assert!(client.cache_lookup(NodeId(1), 3, 1).is_some());
        });
    }
}
