//! Whole-cluster experiment harness.
//!
//! Builds the paper's topology — one server plus up to hundreds of client
//! threads spread over a handful of client machines sharing NICs — runs a
//! workload trace through a chosen [`Scheme`], and reports throughput,
//! latency, server CPU utilization, and server NIC bandwidth. Every
//! figure-regeneration binary in `catfish-bench` is a thin loop over
//! [`run_experiment`].

use std::cell::RefCell;
use std::rc::Rc;

use catfish_rdma::tcp::{TcpConn, TcpEndpoint};
use catfish_rdma::{Endpoint, FaultConfig, FaultPlan, NetProfile};
use catfish_rtree::{RTreeConfig, Rect};
use catfish_simnet::{now, sleep, spawn, CpuPool, Network, Sim, SimDuration};
use catfish_workload::{Request, ScaleDist, TraceSpec};

use crate::client::{CatfishClient, CatfishClusterClient};
use crate::config::{AccessMode, AdaptiveParams, ClientConfig, Scheme, ServerConfig, ServerMode};
use crate::conn::RkeyAllocator;
use crate::msg::Message;
use crate::obs::{
    AdaptiveEventLog, AdaptiveEventRecord, FlightDump, LatencyHistogram, MetricsRegistry, Phase,
    SpanLog, SpanRecord, TraceSink, SERVER_NODE_BASE,
};
use crate::server::{CatfishCluster, CatfishServer};
use crate::stats::{LatencySummary, ServiceStats};

/// Everything needed to run one experiment cell.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Fabric characteristics.
    pub profile: NetProfile,
    /// Access scheme under test.
    pub scheme: Scheme,
    /// Total client threads.
    pub clients: usize,
    /// Client machines the threads are spread over (the paper uses 8).
    pub client_nodes: usize,
    /// Rectangles pre-loaded into the server's tree.
    pub dataset: Vec<(Rect, u64)>,
    /// Per-client request trace specification.
    pub trace: TraceSpec,
    /// Server configuration (mode is overridden per scheme).
    pub server: ServerConfig,
    /// Tree fanout configuration.
    pub tree_config: RTreeConfig,
    /// Base RNG seed (traces and back-off randomization derive from it).
    pub seed: u64,
    /// Overrides the scheme's default server mode (e.g. event-driven fast
    /// messaging for the Fig. 7 comparison).
    pub server_mode: Option<ServerMode>,
    /// Overrides the scheme's default client configuration (e.g. toggling
    /// multi-issue for the Fig. 8 comparison).
    pub client_config: Option<ClientConfig>,
    /// Explicit per-client request traces (clients cycle through the list);
    /// overrides `trace` when set. Used by the rea02 experiment, whose
    /// queries come from the dataset's query generator.
    pub explicit_traces: Option<std::rc::Rc<Vec<Vec<Request>>>>,
    /// Model client machines with this many cores and make fast-messaging
    /// clients busy-poll for responses (FaRM-style, both sides polling).
    /// `None` (default) = clients block on completion events with
    /// unconstrained CPUs. Used by the Fig. 7 polling runs, where client
    /// machines host more threads than cores.
    pub client_polling_cores: Option<usize>,
    /// Attach one shared [`TraceSink`] to the server and every client,
    /// populating [`RunResult::phase_hists`] with the per-phase latency
    /// breakdown. Spans record virtual time without ever advancing it, so
    /// enabling this cannot change a run's outcome. No-op when the
    /// `trace` cargo feature is disabled.
    pub collect_phase_spans: bool,
    /// Record every client's Algorithm 1 decision steps into
    /// [`RunResult::adaptive_events`] (heartbeat consumed, band
    /// escalated/reset, route chosen, with sim timestamps).
    pub collect_adaptive_events: bool,
    /// Attach one shared distributed-trace [`SpanLog`] to every client and
    /// every shard server, populating [`RunResult::spans`] with the
    /// causally-linked records (request roots, per-shard RPC legs, server
    /// dispatch/index-exec spans, merges) that
    /// [`crate::obs::TraceAssembler`] stitches into per-request trees.
    /// Spans observe virtual time without advancing it, so enabling this
    /// cannot change a run's outcome. No-op (empty spans) when the `trace`
    /// cargo feature is disabled.
    pub collect_spans: bool,
    /// Fault-injection configuration. When set, one [`FaultPlan`] seeded
    /// from [`ExperimentSpec::seed`] is attached to the server endpoint
    /// and every client NIC, so the whole cluster draws faults from a
    /// single deterministic stream. `None` (the default) honors the
    /// `CATFISH_FAULTS` environment variable ([`FaultPlan::from_env`]),
    /// letting CI run existing workloads under low-rate chaos without
    /// touching their specs.
    pub fault: Option<FaultConfig>,
    /// Overrides every client's per-attempt request timeout (the `--timeout`
    /// bench knob) without replacing the scheme's client configuration.
    pub request_timeout: Option<SimDuration>,
    /// Overrides every client's retransmission budget (`--max-retries`).
    pub max_retries: Option<u32>,
    /// Server shards. `1` (the default) runs the classic single-server
    /// topology; `> 1` builds a space-partitioned [`CatfishCluster`] with
    /// scatter-gather clients, each shard a full machine with `server`'s
    /// configuration and its own heartbeat stream / Algorithm 1 instance.
    /// The TCP baseline is single-server only.
    pub shards: usize,
    /// With `shards > 1`, attach the fault plan to **one** shard's server
    /// endpoint only (client NICs stay clean — they carry every shard's
    /// traffic, so faulting them cannot target a shard). `None` faults the
    /// whole cluster as usual. With replication the targeted shard's
    /// **primary** draws the faults — the interesting victim.
    pub fault_shard: Option<usize>,
    /// Members per replica set (the `--replicas` bench knob). `1` (the
    /// default) is the classic unreplicated topology; `k > 1` builds every
    /// shard as a k-way replica set with primary-forwarded mutations,
    /// epoch-fenced failover, and hash-range repair.
    pub replicas: usize,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            profile: catfish_rdma::profile::infiniband_100g(),
            scheme: Scheme::Catfish,
            clients: 8,
            client_nodes: 8,
            dataset: Vec::new(),
            trace: TraceSpec::search_only(ScaleDist::small(), 100),
            server: ServerConfig::default(),
            tree_config: RTreeConfig::default(),
            seed: 42,
            server_mode: None,
            client_config: None,
            explicit_traces: None,
            client_polling_cores: None,
            collect_phase_spans: false,
            collect_adaptive_events: false,
            collect_spans: false,
            fault: None,
            request_timeout: None,
            max_retries: None,
            shards: 1,
            fault_shard: None,
            replicas: 1,
        }
    }
}

/// Aggregate outcome of one experiment cell.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme label (figure legend entry).
    pub label: String,
    /// Client thread count.
    pub clients: usize,
    /// Server shards the run used (1 = classic single-server topology).
    pub shards: usize,
    /// Requests completed across all clients.
    pub completed_requests: usize,
    /// Virtual time from first request to last completion.
    pub makespan: SimDuration,
    /// Completed requests per virtual second, in kilo-ops.
    pub throughput_kops: f64,
    /// Latency over all requests.
    pub latency: LatencySummary,
    /// Latency over search requests only.
    pub search_latency: LatencySummary,
    /// Latency over insert/delete requests only.
    pub insert_latency: LatencySummary,
    /// Mean server CPU utilization over the run, in `[0, 1]`.
    pub server_cpu: f64,
    /// Mean server NIC throughput over the run, in Gbps (both directions).
    pub server_bw_gbps: f64,
    /// Client-side service counters merged over all clients (fast vs
    /// offloaded reads, torn retries, restarts, cache hits, ...).
    pub stats: ServiceStats,
    /// Per-shard counters (client-side per-shard-connection counters
    /// merged over all clients, plus each shard's server-side integrity
    /// counters), in shard order. One entry for single-server runs.
    /// Algorithm 1 runs per shard, so offload fractions must be read here
    /// — the aggregate `stats` hides a hot shard offloading behind cold
    /// shards staying fast.
    pub per_shard_stats: Vec<ServiceStats>,
    /// Periodic samples of server resource usage over the run (10 ms
    /// grid), for plotting the adaptive algorithm's dynamics.
    pub timeline: Vec<TimelinePoint>,
    /// Full end-to-end latency distribution over all requests (the
    /// summaries above are views of this histogram).
    pub hist: LatencyHistogram,
    /// Per-phase latency breakdown, in [`Phase::ALL`] order, for phases
    /// that recorded spans. Populated when
    /// [`ExperimentSpec::collect_phase_spans`] is set and the `trace`
    /// feature is compiled in; empty otherwise.
    pub phase_hists: Vec<(Phase, LatencyHistogram)>,
    /// Timeline of adaptive (Algorithm 1) decision events. Populated when
    /// [`ExperimentSpec::collect_adaptive_events`] is set.
    pub adaptive_events: Vec<AdaptiveEventRecord>,
    /// Distributed-trace span records across every node in the run.
    /// Populated when [`ExperimentSpec::collect_spans`] is set and the
    /// `trace` feature is compiled in; empty otherwise.
    pub spans: Vec<SpanRecord>,
    /// Flight-recorder anomaly dumps from every client connection, in
    /// completion order. Always collected — the recorder itself is
    /// always on — and empty on anomaly-free runs.
    pub flight_dumps: Vec<FlightDump>,
}

/// One sample of the server's resource state during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Milliseconds since the run started.
    pub t_ms: f64,
    /// Server CPU utilization over the preceding window, `[0, 1]`.
    pub cpu: f64,
    /// Server NIC throughput over the preceding window, Gbps.
    pub bw_gbps: f64,
}

impl RunResult {
    /// One formatted table row: scheme, clients, shards, throughput, mean
    /// latency, the per-transport response counts (fast write-back /
    /// mailbox-fetched / offloaded, with the dominant mode labeled), the
    /// doorbell merge count, plus per-kop torn-retry and offload-restart
    /// rates. Cluster runs append the per-shard offload fractions —
    /// aggregating them would hide a hot shard offloading behind cold
    /// shards staying fast.
    pub fn row(&self) -> String {
        let per_kop = |count: u64| {
            if self.completed_requests == 0 {
                0.0
            } else {
                count as f64 * 1e3 / self.completed_requests as f64
            }
        };
        let mut row = format!(
            "{:<22} {:>4} clients  {:>2} shards  {:>10.2} Kops  mean {:>10}  p99 {:>10}  cpu {:>5.1}%  bw {:>7.2} Gbps  modes f/F/o {:>6}/{:>6}/{:>6} ({})  merged {:>6}  torn {:>6.1}/kop  restarts {:>5.1}/kop",
            self.label,
            self.clients,
            self.shards,
            self.throughput_kops,
            self.latency.mean.to_string(),
            self.latency.p99.to_string(),
            self.server_cpu * 100.0,
            self.server_bw_gbps,
            self.stats.fast_reads,
            self.stats.fetched_reads,
            self.stats.offloaded_reads,
            self.stats.dominant_transport(),
            self.stats.merged_writes,
            per_kop(self.stats.torn_retries),
            per_kop(self.stats.offload_restarts),
        );
        if self.per_shard_stats.len() > 1 {
            row.push_str("  off/shard [");
            for (i, s) in self.per_shard_stats.iter().enumerate() {
                if i > 0 {
                    row.push(' ');
                }
                row.push_str(&format!("{:.2}", s.offload_fraction()));
            }
            row.push(']');
        }
        row
    }

    /// Snapshots the run into a [`MetricsRegistry`] — counters from
    /// [`ServiceStats`], resource gauges, the end-to-end latency
    /// histogram, and one histogram per traced phase — ready for
    /// Prometheus-text or JSONL exposition (`--metrics-out` in the bench
    /// binaries).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "catfish_requests_total",
            "Requests completed across all clients.",
            self.completed_requests as u64,
        )
        .counter(
            "catfish_fast_reads_total",
            "Client reads served through fast messaging.",
            self.stats.fast_reads,
        )
        .counter(
            "catfish_offloaded_reads_total",
            "Client reads served through RDMA-offloaded traversal.",
            self.stats.offloaded_reads,
        )
        .counter(
            "catfish_fetched_reads_total",
            "Client reads whose responses were pulled from the mailbox.",
            self.stats.fetched_reads,
        )
        .counter(
            "catfish_fetched_responses_total",
            "Responses the server deposited into mailbox slots.",
            self.stats.fetched_responses,
        )
        .counter(
            "catfish_fetch_fallbacks_total",
            "Fetch-flagged responses that fell back to ring write-back.",
            self.stats.fetch_fallbacks,
        )
        .counter(
            "catfish_mailbox_reclaims_total",
            "Mailbox slot leases reclaimed (acked or lease-expired).",
            self.stats.mailbox_reclaims,
        )
        .counter(
            "catfish_merged_writes_total",
            "Ring writes absorbed into an already-queued doorbell entry.",
            self.stats.merged_writes,
        )
        .counter(
            "catfish_torn_retries_total",
            "Chunk reads retried after version-validation failure.",
            self.stats.torn_retries,
        )
        .counter(
            "catfish_offload_restarts_total",
            "Offloaded traversals restarted after an inconsistency.",
            self.stats.offload_restarts,
        )
        .counter(
            "catfish_cache_hits_total",
            "Chunk reads served from the client-side level cache.",
            self.stats.cache_hits,
        )
        .counter(
            "catfish_batches_sent_total",
            "Doorbell batches carrying two or more coalesced messages.",
            self.stats.batches_sent,
        )
        .counter(
            "catfish_batched_msgs_total",
            "Messages carried inside doorbell batches.",
            self.stats.batched_msgs,
        )
        .counter(
            "catfish_decode_errors_total",
            "Malformed ring frames dropped by the server.",
            self.stats.decode_errors,
        )
        .counter(
            "catfish_timeouts_total",
            "Request attempts that expired without a response.",
            self.stats.timeouts,
        )
        .counter(
            "catfish_retransmits_total",
            "Requests re-sent after a timeout.",
            self.stats.retransmits,
        )
        .counter(
            "catfish_dup_drops_total",
            "Duplicate write-class requests answered from the dedup cache.",
            self.stats.dup_drops,
        )
        .counter(
            "catfish_checksum_failures_total",
            "Ring frames dropped on CRC mismatch.",
            self.stats.checksum_failures,
        )
        .counter(
            "catfish_resyncs_total",
            "Ring receivers that skipped a lost-frame hole.",
            self.stats.resyncs,
        )
        .counter(
            "catfish_stale_heartbeat_windows_total",
            "Fresh-to-stale heartbeat transitions (failsafe engagements).",
            self.stats.stale_heartbeat_windows,
        )
        .counter(
            "catfish_flight_dumps_total",
            "Flight-recorder anomaly dumps captured across connections.",
            self.stats.flight_dumps,
        )
        .gauge(
            "catfish_throughput_kops",
            "Completed requests per virtual second, kilo-ops.",
            self.throughput_kops,
        )
        .gauge(
            "catfish_server_cpu_utilization",
            "Mean server CPU utilization over the run.",
            self.server_cpu,
        )
        .gauge(
            "catfish_server_bandwidth_gbps",
            "Mean server NIC throughput over the run, Gbps.",
            self.server_bw_gbps,
        )
        .gauge(
            "catfish_shards",
            "Server shards in the run's topology.",
            self.shards as f64,
        )
        .histogram(
            "catfish_request_latency_seconds",
            "End-to-end request latency.",
            &self.hist,
        );
        for (shard, s) in self.per_shard_stats.iter().enumerate() {
            reg.gauge(
                &format!("catfish_shard_offload_fraction_{shard}"),
                &format!("Fraction of shard {shard}'s reads that offloaded."),
                s.offload_fraction(),
            );
        }
        for (phase, hist) in &self.phase_hists {
            reg.histogram(
                &format!("catfish_phase_{}_seconds", phase.name()),
                &format!("Virtual time attributed to the {} phase.", phase.name()),
                hist,
            );
        }
        reg
    }
}

/// Runs one experiment cell to completion inside a fresh simulation.
pub fn run_experiment(spec: &ExperimentSpec) -> RunResult {
    let sim = Sim::new();
    let spec = spec.clone();
    sim.run_until(async move { run_inner(spec).await })
}

fn client_config_for(scheme: Scheme, server: &ServerConfig) -> ClientConfig {
    match scheme {
        Scheme::FastMessaging | Scheme::TcpIp => ClientConfig {
            mode: AccessMode::FastMessaging,
            multi_issue: false,
            ..ClientConfig::default()
        },
        Scheme::RdmaOffloading => ClientConfig {
            mode: AccessMode::Offloading,
            multi_issue: false,
            ..ClientConfig::default()
        },
        Scheme::Catfish => ClientConfig {
            mode: AccessMode::Adaptive(AdaptiveParams {
                heartbeat_interval: server.heartbeat_interval,
                ..AdaptiveParams::default()
            }),
            multi_issue: true,
            ..ClientConfig::default()
        },
    }
}

#[derive(Debug, Default)]
struct ClientOutcome {
    search: LatencyHistogram,
    write: LatencyHistogram,
    stats: ServiceStats,
    /// Per-shard-connection counters (cluster runs only).
    per_shard: Vec<ServiceStats>,
    /// This client's flight-recorder anomaly dumps (all connections).
    flight_dumps: Vec<FlightDump>,
}

async fn run_inner(spec: ExperimentSpec) -> RunResult {
    // Replication rides on the cluster topology even at one shard: a
    // 1-shard k-way replica set is a legal (and useful) configuration.
    if spec.shards > 1 || spec.replicas > 1 {
        return run_cluster_inner(spec).await;
    }
    let net = Network::new();
    let rkeys = RkeyAllocator::new();
    let mut server_cfg = spec.server;
    server_cfg.mode = spec.server_mode.unwrap_or(match spec.scheme {
        // The FaRM-style baselines poll; Catfish is event-driven (§IV-B).
        Scheme::FastMessaging | Scheme::RdmaOffloading => ServerMode::Polling,
        Scheme::Catfish => ServerMode::EventDriven,
        Scheme::TcpIp => ServerMode::EventDriven, // unused by the TCP path
    });
    let server = CatfishServer::build(
        &net,
        &spec.profile,
        server_cfg,
        spec.tree_config,
        spec.dataset.clone(),
        &rkeys,
    );
    // One shared fault plan for the whole cluster: every endpoint draws
    // from the same seeded decision stream, so runs replay byte-identically.
    let fault_plan = match spec.fault {
        Some(cfg) if cfg.is_active() => Some(FaultPlan::new(cfg, spec.seed)),
        Some(_) => None,
        None => FaultPlan::from_env(),
    };
    if let Some(plan) = &fault_plan {
        server.endpoint().set_fault_plan(Some(plan.clone()));
    }
    if spec.scheme == Scheme::Catfish {
        server.start_heartbeats();
    }
    // One sink shared by the server and every client: the per-phase
    // breakdown aggregates the whole cluster.
    let trace_sink = spec.collect_phase_spans.then(TraceSink::new);
    if let Some(sink) = &trace_sink {
        server.set_trace(sink.clone());
    }
    let event_log = spec.collect_adaptive_events.then(AdaptiveEventLog::new);
    // One shared span log: the server and every client stamp into the same
    // id space, so cross-node parent links resolve at assembly time.
    let span_log = spec.collect_spans.then(SpanLog::new);
    if let Some(log) = &span_log {
        server.set_span_log(log.for_node(SERVER_NODE_BASE));
    }

    // Client machines share NICs.
    let node_count = spec.client_nodes.max(1).min(spec.clients.max(1));
    let rdma_eps: Vec<Endpoint> = (0..node_count)
        .map(|_| {
            let ep = Endpoint::new(&net, net.add_node(spec.profile.link), spec.profile.rdma);
            if let Some(plan) = &fault_plan {
                ep.set_fault_plan(Some(plan.clone()));
            }
            ep
        })
        .collect();
    let poll_pools: Vec<Option<CpuPool>> = (0..node_count)
        .map(|_| {
            spec.client_polling_cores
                .map(|cores| CpuPool::new(cores, server_cfg.quantum))
        })
        .collect();
    let tcp_eps: Vec<TcpEndpoint> = if spec.scheme == Scheme::TcpIp {
        rdma_eps
            .iter()
            .map(|ep| TcpEndpoint::new(&net, ep.node(), spec.profile.tcp, None))
            .collect()
    } else {
        Vec::new()
    };

    let started = now();
    let outcomes: Rc<RefCell<Vec<ClientOutcome>>> = Rc::new(RefCell::new(Vec::new()));
    let mut handles = Vec::with_capacity(spec.clients);
    for client_id in 0..spec.clients {
        let trace = match &spec.explicit_traces {
            Some(traces) => traces[client_id % traces.len()].clone(),
            None => spec.trace.client_trace(client_id as u64, spec.seed),
        };
        let outcomes = Rc::clone(&outcomes);
        // Spread connection setup over a few milliseconds, as independent
        // client machines would; this also de-phases the steady state.
        let stagger = SimDuration::from_nanos(17_039 * client_id as u64);
        match spec.scheme {
            Scheme::TcpIp => {
                let ep = tcp_eps[client_id % node_count].clone();
                let (conn, server_side) = ep.connect(&server.tcp_endpoint());
                server.accept_tcp(server_side);
                handles.push(spawn(async move {
                    sleep(stagger).await;
                    let outcome = tcp_client_task(conn, trace).await;
                    outcomes.borrow_mut().push(outcome);
                }));
            }
            _ => {
                let ep = &rdma_eps[client_id % node_count];
                let ch = server.accept(ep);
                let mut cfg = spec
                    .client_config
                    .unwrap_or_else(|| client_config_for(spec.scheme, &server_cfg));
                if let Some(t) = spec.request_timeout {
                    cfg.request_timeout = t;
                }
                if let Some(r) = spec.max_retries {
                    cfg.max_retries = r;
                }
                let mut client = CatfishClient::new(
                    ch,
                    server.remote_handle(),
                    cfg,
                    spec.seed ^ (client_id as u64).wrapping_mul(0x5851_F42D_4C95_7F2D),
                );
                if let Some(pool) = &poll_pools[client_id % node_count] {
                    client = client.with_response_polling(pool.clone());
                }
                if let Some(sink) = &trace_sink {
                    client = client.with_trace(sink.clone());
                }
                if let Some(log) = &event_log {
                    client.set_adaptive_event_log(log.for_client(client_id as u32));
                }
                if let Some(log) = &span_log {
                    client.set_span_log(log.for_node(client_id as u32));
                }
                client.set_flight_ids(client_id as u32, 0);
                handles.push(spawn(async move {
                    sleep(stagger).await;
                    let outcome = rdma_client_task(&mut client, trace).await;
                    outcomes.borrow_mut().push(outcome);
                }));
            }
        }
    }

    let cpu_start = server.cpu().sample();
    let bw_start = net.traffic(server.endpoint().node());
    // Background sampler for the run timeline (10 ms grid).
    let timeline: Rc<RefCell<Vec<TimelinePoint>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let timeline = Rc::clone(&timeline);
        let server = server.clone();
        let net = net.clone();
        spawn(async move {
            let mut prev_cpu = server.cpu().sample();
            let mut prev_bw = net.traffic(server.endpoint().node());
            loop {
                sleep(SimDuration::from_millis(10)).await;
                let cpu = server.cpu().sample();
                let bw = net.traffic(server.endpoint().node());
                timeline.borrow_mut().push(TimelinePoint {
                    t_ms: now().duration_since(started).as_secs_f64() * 1e3,
                    cpu: server.cpu().utilization_between(&prev_cpu, &cpu),
                    bw_gbps: bw.throughput_bps_since(&prev_bw) / 1e9,
                });
                prev_cpu = cpu;
                prev_bw = bw;
            }
        });
    }
    for h in handles {
        h.await;
    }
    let cpu_end = server.cpu().sample();
    let bw_end = net.traffic(server.endpoint().node());

    let makespan = now() - started;
    let outcomes = Rc::try_unwrap(outcomes)
        .expect("all client tasks joined")
        .into_inner();
    let mut all = LatencyHistogram::new();
    let mut search = LatencyHistogram::new();
    let mut write = LatencyHistogram::new();
    let mut stats = ServiceStats::default();
    let mut flight_dumps = Vec::new();
    for o in outcomes {
        all.merge(&o.search);
        all.merge(&o.write);
        search.merge(&o.search);
        write.merge(&o.write);
        stats.merge(&o.stats);
        flight_dumps.extend(o.flight_dumps);
    }
    // Robustness counters that live server-side (duplicate suppression,
    // request-ring integrity) join the client-merged snapshot so one
    // struct tells the whole fault story. The other server counters stay
    // separate: fields like `batches_sent` exist on both sides and the
    // client-side reading is what the batching figures plot.
    {
        let ss = server.stats();
        stats.dup_drops += ss.dup_drops;
        stats.checksum_failures += ss.checksum_failures;
        stats.resyncs += ss.resyncs;
        stats.merged_writes += ss.merged_writes;
        stats.fetched_responses += ss.fetched_responses;
        stats.fetch_fallbacks += ss.fetch_fallbacks;
        stats.mailbox_reclaims += ss.mailbox_reclaims;
    }
    let completed = all.len();
    let throughput_kops = if makespan.is_zero() {
        0.0
    } else {
        completed as f64 / makespan.as_secs_f64() / 1e3
    };
    RunResult {
        label: spec.scheme.label(&spec.profile),
        clients: spec.clients,
        shards: 1,
        per_shard_stats: vec![stats],
        completed_requests: completed,
        makespan,
        throughput_kops,
        latency: all.summary(),
        search_latency: search.summary(),
        insert_latency: write.summary(),
        server_cpu: server.cpu().utilization_between(&cpu_start, &cpu_end),
        server_bw_gbps: bw_end.throughput_bps_since(&bw_start) / 1e9,
        stats,
        timeline: {
            let t = timeline.borrow().clone();
            t
        },
        hist: all,
        phase_hists: trace_sink
            .map(|sink| {
                Phase::ALL
                    .iter()
                    .filter_map(|&p| sink.phase_histogram(p).map(|h| (p, h)))
                    .collect()
            })
            .unwrap_or_default(),
        adaptive_events: event_log.map(|log| log.snapshot()).unwrap_or_default(),
        spans: span_log.map(|log| log.snapshot()).unwrap_or_default(),
        flight_dumps,
    }
}

/// The `shards > 1` topology: a space-partitioned [`CatfishCluster`] with
/// one scatter-gather client per client thread. Mirrors the single-server
/// path — same staggering, same per-client seeds, same trace/event
/// plumbing — with per-shard resource accounting: server CPU is the mean
/// across shards (each shard is a full machine) and NIC bandwidth the sum.
async fn run_cluster_inner(spec: ExperimentSpec) -> RunResult {
    assert!(
        spec.scheme != Scheme::TcpIp,
        "the TCP baseline is single-server only; use shards = 1"
    );
    let net = Network::new();
    let rkeys = RkeyAllocator::new();
    let mut server_cfg = spec.server;
    server_cfg.mode = spec.server_mode.unwrap_or(match spec.scheme {
        Scheme::FastMessaging | Scheme::RdmaOffloading => ServerMode::Polling,
        Scheme::Catfish | Scheme::TcpIp => ServerMode::EventDriven,
    });
    let cluster = if spec.replicas > 1 {
        CatfishCluster::build_replicated(
            &net,
            &spec.profile,
            server_cfg,
            spec.tree_config,
            spec.dataset.clone(),
            spec.shards,
            spec.replicas,
            &rkeys,
        )
    } else {
        CatfishCluster::build(
            &net,
            &spec.profile,
            server_cfg,
            spec.tree_config,
            spec.dataset.clone(),
            spec.shards,
            &rkeys,
        )
    };
    // Primaries at build time (replica 0 of each set) — the machines the
    // timeline and fault targeting watch.
    let shard_servers: Vec<CatfishServer> = (0..cluster.shards())
        .map(|i| cluster.shard(i).clone())
        .collect();
    let mut all_servers: Vec<CatfishServer> = Vec::new();
    for i in 0..cluster.shards() {
        for r in 0..cluster.replicas() {
            all_servers.push(cluster.replica(i, r).clone());
        }
    }
    let fault_plan = match spec.fault {
        Some(cfg) if cfg.is_active() => Some(FaultPlan::new(cfg, spec.seed)),
        Some(_) => None,
        None => FaultPlan::from_env(),
    };
    if let Some(plan) = &fault_plan {
        match spec.fault_shard {
            // Single-shard chaos: only the targeted shard's server NIC
            // draws faults; everything else runs clean.
            Some(s) => cluster
                .shard(s)
                .endpoint()
                .set_fault_plan(Some(plan.clone())),
            None => {
                for s in &all_servers {
                    s.endpoint().set_fault_plan(Some(plan.clone()));
                }
            }
        }
    }
    if spec.scheme == Scheme::Catfish {
        cluster.start_heartbeats();
    }
    let trace_sink = spec.collect_phase_spans.then(TraceSink::new);
    if let Some(sink) = &trace_sink {
        for s in &all_servers {
            s.set_trace(sink.clone());
        }
    }
    let event_log = spec.collect_adaptive_events.then(AdaptiveEventLog::new);
    let span_log = spec.collect_spans.then(SpanLog::new);
    if let Some(log) = &span_log {
        cluster.set_span_log(log);
    }

    let node_count = spec.client_nodes.max(1).min(spec.clients.max(1));
    let rdma_eps: Vec<Endpoint> = (0..node_count)
        .map(|_| {
            let ep = Endpoint::new(&net, net.add_node(spec.profile.link), spec.profile.rdma);
            // Client NICs carry every shard's traffic, so they only draw
            // faults in whole-cluster chaos — a single-shard target must
            // leave them clean.
            if spec.fault_shard.is_none() {
                if let Some(plan) = &fault_plan {
                    ep.set_fault_plan(Some(plan.clone()));
                }
            }
            ep
        })
        .collect();
    let poll_pools: Vec<Option<CpuPool>> = (0..node_count)
        .map(|_| {
            spec.client_polling_cores
                .map(|cores| CpuPool::new(cores, server_cfg.quantum))
        })
        .collect();

    let started = now();
    let outcomes: Rc<RefCell<Vec<ClientOutcome>>> = Rc::new(RefCell::new(Vec::new()));
    let mut handles = Vec::with_capacity(spec.clients);
    for client_id in 0..spec.clients {
        let trace = match &spec.explicit_traces {
            Some(traces) => traces[client_id % traces.len()].clone(),
            None => spec.trace.client_trace(client_id as u64, spec.seed),
        };
        let outcomes = Rc::clone(&outcomes);
        let stagger = SimDuration::from_nanos(17_039 * client_id as u64);
        let ep = &rdma_eps[client_id % node_count];
        let mut cfg = spec
            .client_config
            .unwrap_or_else(|| client_config_for(spec.scheme, &server_cfg));
        if let Some(t) = spec.request_timeout {
            cfg.request_timeout = t;
        }
        if let Some(r) = spec.max_retries {
            cfg.max_retries = r;
        }
        let mut client = CatfishClusterClient::connect_from(
            &cluster,
            ep,
            cfg,
            spec.seed ^ (client_id as u64).wrapping_mul(0x5851_F42D_4C95_7F2D),
        );
        if let Some(pool) = &poll_pools[client_id % node_count] {
            client.set_response_polling(pool);
        }
        if let Some(sink) = &trace_sink {
            client.set_trace(sink);
        }
        if let Some(log) = &event_log {
            client.set_adaptive_event_log(&log.for_client(client_id as u32));
        }
        if let Some(log) = &span_log {
            client.set_span_log(log.for_node(client_id as u32));
        }
        client.set_flight_ids(client_id as u32);
        handles.push(spawn(async move {
            sleep(stagger).await;
            let outcome = cluster_client_task(&mut client, trace).await;
            outcomes.borrow_mut().push(outcome);
        }));
    }

    let cpu_starts: Vec<_> = shard_servers.iter().map(|s| s.cpu().sample()).collect();
    let bw_starts: Vec<_> = shard_servers
        .iter()
        .map(|s| net.traffic(s.endpoint().node()))
        .collect();
    let timeline: Rc<RefCell<Vec<TimelinePoint>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let timeline = Rc::clone(&timeline);
        let servers = shard_servers.clone();
        let net = net.clone();
        spawn(async move {
            let mut prev_cpu: Vec<_> = servers.iter().map(|s| s.cpu().sample()).collect();
            let mut prev_bw: Vec<_> = servers
                .iter()
                .map(|s| net.traffic(s.endpoint().node()))
                .collect();
            loop {
                sleep(SimDuration::from_millis(10)).await;
                let mut cpu_sum = 0.0;
                let mut bw_sum = 0.0;
                for (i, s) in servers.iter().enumerate() {
                    let cpu = s.cpu().sample();
                    let bw = net.traffic(s.endpoint().node());
                    cpu_sum += s.cpu().utilization_between(&prev_cpu[i], &cpu);
                    bw_sum += bw.throughput_bps_since(&prev_bw[i]) / 1e9;
                    prev_cpu[i] = cpu;
                    prev_bw[i] = bw;
                }
                timeline.borrow_mut().push(TimelinePoint {
                    t_ms: now().duration_since(started).as_secs_f64() * 1e3,
                    cpu: cpu_sum / servers.len() as f64,
                    bw_gbps: bw_sum,
                });
            }
        });
    }
    for h in handles {
        h.await;
    }
    let mut cpu_mean = 0.0;
    let mut bw_total = 0.0;
    for (i, s) in shard_servers.iter().enumerate() {
        cpu_mean += s
            .cpu()
            .utilization_between(&cpu_starts[i], &s.cpu().sample());
        bw_total += net
            .traffic(s.endpoint().node())
            .throughput_bps_since(&bw_starts[i])
            / 1e9;
    }
    cpu_mean /= shard_servers.len() as f64;

    let makespan = now() - started;
    let outcomes = Rc::try_unwrap(outcomes)
        .expect("all client tasks joined")
        .into_inner();
    let mut all = LatencyHistogram::new();
    let mut search = LatencyHistogram::new();
    let mut write = LatencyHistogram::new();
    let mut stats = ServiceStats::default();
    let mut per_shard_stats = vec![ServiceStats::default(); spec.shards];
    let mut flight_dumps = Vec::new();
    for o in outcomes {
        all.merge(&o.search);
        all.merge(&o.write);
        search.merge(&o.search);
        write.merge(&o.write);
        stats.merge(&o.stats);
        for (i, s) in o.per_shard.iter().enumerate() {
            per_shard_stats[i].merge(s);
        }
        flight_dumps.extend(o.flight_dumps);
    }
    // Server-side robustness counters fold in per shard (so a single-shard
    // fault audit can attribute them) and into the aggregate. Replica
    // counters are already summed within each set.
    for (i, ss) in cluster.stats_per_shard().into_iter().enumerate() {
        per_shard_stats[i].dup_drops += ss.dup_drops;
        per_shard_stats[i].checksum_failures += ss.checksum_failures;
        per_shard_stats[i].resyncs += ss.resyncs;
        per_shard_stats[i].merged_writes += ss.merged_writes;
        per_shard_stats[i].fetched_responses += ss.fetched_responses;
        per_shard_stats[i].fetch_fallbacks += ss.fetch_fallbacks;
        per_shard_stats[i].mailbox_reclaims += ss.mailbox_reclaims;
        per_shard_stats[i].repl_forwards += ss.repl_forwards;
        per_shard_stats[i].repl_fenced += ss.repl_fenced;
        per_shard_stats[i].repl_dups += ss.repl_dups;
        per_shard_stats[i].repl_lag_ns += ss.repl_lag_ns;
        stats.dup_drops += ss.dup_drops;
        stats.checksum_failures += ss.checksum_failures;
        stats.resyncs += ss.resyncs;
        stats.merged_writes += ss.merged_writes;
        stats.fetched_responses += ss.fetched_responses;
        stats.fetch_fallbacks += ss.fetch_fallbacks;
        stats.mailbox_reclaims += ss.mailbox_reclaims;
        stats.repl_forwards += ss.repl_forwards;
        stats.repl_fenced += ss.repl_fenced;
        stats.repl_dups += ss.repl_dups;
        stats.repl_lag_ns += ss.repl_lag_ns;
    }
    let completed = all.len();
    let throughput_kops = if makespan.is_zero() {
        0.0
    } else {
        completed as f64 / makespan.as_secs_f64() / 1e3
    };
    RunResult {
        label: spec.scheme.label(&spec.profile),
        clients: spec.clients,
        shards: spec.shards,
        per_shard_stats,
        completed_requests: completed,
        makespan,
        throughput_kops,
        latency: all.summary(),
        search_latency: search.summary(),
        insert_latency: write.summary(),
        server_cpu: cpu_mean,
        server_bw_gbps: bw_total,
        stats,
        timeline: {
            let t = timeline.borrow().clone();
            t
        },
        hist: all,
        phase_hists: trace_sink
            .map(|sink| {
                Phase::ALL
                    .iter()
                    .filter_map(|&p| sink.phase_histogram(p).map(|h| (p, h)))
                    .collect()
            })
            .unwrap_or_default(),
        adaptive_events: event_log.map(|log| log.snapshot()).unwrap_or_default(),
        spans: span_log.map(|log| log.snapshot()).unwrap_or_default(),
        flight_dumps,
    }
}

async fn cluster_client_task(
    client: &mut CatfishClusterClient,
    trace: Vec<Request>,
) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    for req in trace {
        let t0 = now();
        match req {
            Request::Search(rect) => {
                client.search(&rect).await;
                outcome.search.record(now() - t0);
            }
            Request::Insert(rect, data) => {
                client.insert(rect, data).await;
                outcome.write.record(now() - t0);
            }
            Request::Delete(rect, data) => {
                client.delete(rect, data).await;
                outcome.write.record(now() - t0);
            }
        }
    }
    outcome.stats = client.stats();
    outcome.per_shard = client.stats_per_shard();
    outcome.flight_dumps = client.flight_dumps();
    outcome
}

async fn rdma_client_task(client: &mut CatfishClient, trace: Vec<Request>) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    for req in trace {
        let t0 = now();
        match req {
            Request::Search(rect) => {
                client.search(&rect).await;
                outcome.search.record(now() - t0);
            }
            Request::Insert(rect, data) => {
                client.insert(rect, data).await;
                outcome.write.record(now() - t0);
            }
            Request::Delete(rect, data) => {
                client.delete(rect, data).await;
                outcome.write.record(now() - t0);
            }
        }
    }
    outcome.stats = client.stats();
    outcome.flight_dumps = client.flight().dumps();
    outcome
}

async fn tcp_client_task(conn: TcpConn, trace: Vec<Request>) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let mut seq = 0u32;
    for req in trace {
        let t0 = now();
        seq += 1;
        let msg = match req {
            Request::Search(rect) => Message::SearchReq { seq, rect },
            Request::Insert(rect, data) => Message::InsertReq { seq, rect, data },
            Request::Delete(rect, data) => Message::DeleteReq { seq, rect, data },
        };
        conn.send(msg.encode()).await;
        loop {
            let bytes = conn.recv().await.expect("server stays up");
            match Message::decode(&bytes) {
                Ok(Message::ResponseEnd { seq: s, .. }) if s == seq => break,
                Ok(Message::ResponseCont { .. }) => {}
                _ => {}
            }
        }
        match req {
            Request::Search(_) => outcome.search.record(now() - t0),
            Request::Insert(..) | Request::Delete(..) => outcome.write.record(now() - t0),
        }
    }
    outcome
}

/// Convenience: measure average server CPU and bandwidth for the
/// motivating experiment (Fig. 2) while a TCP search workload runs.
#[derive(Debug, Clone, Copy)]
pub struct UtilizationPoint {
    /// Clients in this cell.
    pub clients: usize,
    /// Mean server CPU utilization `[0, 1]`.
    pub cpu: f64,
    /// Mean server NIC throughput in Gbps.
    pub bandwidth_gbps: f64,
}

/// Runs a TCP/IP workload and reports the server's resource profile (the
/// paper's Fig. 2 motivating measurement).
pub fn measure_tcp_utilization(spec: &ExperimentSpec) -> UtilizationPoint {
    let mut spec = spec.clone();
    spec.scheme = Scheme::TcpIp;
    let r = run_experiment(&spec);
    UtilizationPoint {
        clients: r.clients,
        cpu: r.server_cpu,
        bandwidth_gbps: r.server_bw_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catfish_workload::uniform_rects;

    fn small_spec(scheme: Scheme) -> ExperimentSpec {
        ExperimentSpec {
            scheme,
            clients: 4,
            client_nodes: 2,
            dataset: uniform_rects(3_000, 1e-3, 9),
            trace: TraceSpec::search_only(ScaleDist::Fixed { bound: 0.02 }, 25),
            server: ServerConfig {
                cores: 4,
                ..ServerConfig::default()
            },
            ..ExperimentSpec::default()
        }
    }

    #[test]
    fn catfish_run_completes_all_requests() {
        let r = run_experiment(&small_spec(Scheme::Catfish));
        assert_eq!(r.completed_requests, 100);
        assert!(r.throughput_kops > 0.0);
        assert!(r.latency.mean > SimDuration::ZERO);
    }

    #[test]
    fn all_schemes_complete() {
        for scheme in [
            Scheme::TcpIp,
            Scheme::FastMessaging,
            Scheme::RdmaOffloading,
            Scheme::Catfish,
        ] {
            let r = run_experiment(&small_spec(scheme));
            assert_eq!(r.completed_requests, 100, "{}", r.label);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_experiment(&small_spec(Scheme::Catfish));
        let b = run_experiment(&small_spec(Scheme::Catfish));
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.completed_requests, b.completed_requests);
    }

    #[test]
    fn offloading_uses_no_server_search_cpu() {
        let spec = small_spec(Scheme::RdmaOffloading);
        let r = run_experiment(&spec);
        assert_eq!(r.stats.fast_reads, 0);
        assert_eq!(r.stats.offloaded_reads, 100);
    }

    #[test]
    fn hybrid_workload_records_write_latency() {
        let mut spec = small_spec(Scheme::Catfish);
        spec.trace = TraceSpec::hybrid(ScaleDist::Fixed { bound: 0.02 }, 40);
        let r = run_experiment(&spec);
        assert_eq!(r.completed_requests, 160);
        assert!(r.insert_latency.count > 0, "some inserts must occur");
        assert!(r.search_latency.count > 0);
    }

    #[test]
    fn timeline_is_sampled_on_long_runs() {
        let mut spec = small_spec(Scheme::Catfish);
        spec.trace = TraceSpec::search_only(ScaleDist::Fixed { bound: 0.02 }, 400);
        let r = run_experiment(&spec);
        // A run spanning > 10 ms gets timeline points with sane values.
        assert!(!r.timeline.is_empty());
        assert!(r.timeline.windows(2).all(|w| w[0].t_ms < w[1].t_ms));
        assert!(r.timeline.iter().all(|p| (0.0..=1.0).contains(&p.cpu)));
        assert!(r.timeline.iter().all(|p| p.bw_gbps >= 0.0));
    }

    #[test]
    fn churn_workload_completes_with_valid_tree() {
        let mut spec = small_spec(Scheme::Catfish);
        spec.trace = TraceSpec::churn(ScaleDist::Fixed { bound: 0.02 }, 60, 0.2, 0.1);
        let r = run_experiment(&spec);
        assert_eq!(r.completed_requests, 240);
        assert!(r.insert_latency.count > 0);
    }

    #[test]
    fn cluster_run_completes_all_requests() {
        let mut spec = small_spec(Scheme::Catfish);
        spec.shards = 4;
        let r = run_experiment(&spec);
        assert_eq!(r.completed_requests, 100);
        assert_eq!(r.shards, 4);
        assert_eq!(r.per_shard_stats.len(), 4);
        // Every shard saw traffic: fanout hit each of them at least once.
        let served: u64 = r
            .per_shard_stats
            .iter()
            .map(|s| s.fast_reads + s.offloaded_reads)
            .sum();
        assert!(served >= 100, "shard reads {served} < requests");
        assert!(r.row().contains("4 shards"));
        assert!(r.row().contains("off/shard ["));
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let mut spec = small_spec(Scheme::Catfish);
        spec.shards = 2;
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn cluster_churn_completes_with_writes_routed() {
        let mut spec = small_spec(Scheme::Catfish);
        spec.shards = 3;
        spec.trace = TraceSpec::churn(ScaleDist::Fixed { bound: 0.02 }, 40, 0.2, 0.1);
        let r = run_experiment(&spec);
        assert_eq!(r.completed_requests, 160);
        assert!(r.insert_latency.count > 0);
        // Writes landed on home shards only; totals add up.
        let writes: u64 = r.per_shard_stats.iter().map(|s| s.writes_sent).sum();
        assert_eq!(writes, r.stats.writes_sent);
    }

    #[test]
    #[should_panic(expected = "single-server only")]
    fn tcp_cluster_is_rejected() {
        let mut spec = small_spec(Scheme::TcpIp);
        spec.shards = 2;
        run_experiment(&spec);
    }

    #[test]
    fn tcp_utilization_point_is_sane() {
        let mut spec = small_spec(Scheme::TcpIp);
        spec.profile = catfish_rdma::profile::ethernet_1g();
        let p = measure_tcp_utilization(&spec);
        assert!(p.cpu > 0.0 && p.cpu <= 1.0);
        assert!(p.bandwidth_gbps > 0.0 && p.bandwidth_gbps <= 1.0);
    }
}
