//! Failure injection: the protocol under hostile conditions — lost
//! heartbeats, exhausted retry budgets, starved rings, churning trees.

use catfish_core::config::{AccessMode, AdaptiveParams, ClientConfig, ServerConfig, ServerMode};
use catfish_core::conn::RkeyAllocator;
use catfish_core::server::CatfishServer;
use catfish_core::CatfishClient;
use catfish_rdma::profile::infiniband_100g;
use catfish_rdma::{Endpoint, RdmaProfile};
use catfish_rtree::{RTreeConfig, Rect};
use catfish_simnet::{sleep, spawn, Network, Sim, SimDuration};

fn dataset(n: u64) -> Vec<(Rect, u64)> {
    (0..n)
        .map(|i| {
            let x = (i % 128) as f64 / 128.0;
            let y = (i / 128) as f64 / 128.0;
            (Rect::new(x, y, x + 0.004, y + 0.004), i)
        })
        .collect()
}

fn build(cores: usize, items: u64) -> (Network, CatfishServer) {
    let net = Network::new();
    let profile = infiniband_100g();
    let rkeys = RkeyAllocator::new();
    let server = CatfishServer::build(
        &net,
        &profile,
        ServerConfig {
            cores,
            mode: ServerMode::EventDriven,
            ..ServerConfig::default()
        },
        RTreeConfig::with_max_entries(88),
        dataset(items),
        &rkeys,
    );
    (net, server)
}

fn attach(net: &Network, server: &CatfishServer, cfg: ClientConfig, seed: u64) -> CatfishClient {
    let profile = infiniband_100g();
    let ep = Endpoint::new(net, net.add_node(profile.link), RdmaProfile::default());
    let ch = server.accept(&ep);
    CatfishClient::new(ch, server.remote_handle(), cfg, seed)
}

/// An adaptive client that never receives a heartbeat (server publisher
/// not started) must keep operating correctly in fast-messaging mode.
#[test]
fn heartbeat_loss_degrades_gracefully() {
    let sim = Sim::new();
    sim.run_until(async {
        let (net, server) = build(4, 4_000);
        // Deliberately NOT calling server.start_heartbeats().
        let mut client = attach(
            &net,
            &server,
            ClientConfig {
                mode: AccessMode::Adaptive(AdaptiveParams::default()),
                ..ClientConfig::default()
            },
            1,
        );
        for i in 0..50u64 {
            let x = (i as f64 * 0.017) % 0.9;
            let q = Rect::new(x, x, x + 0.05, x + 0.05);
            let mut got = client.search(&q).await;
            let mut expect = server.with_index(|t| t.search(&q));
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
        assert_eq!(client.stats().offloaded_reads, 0);
        assert_eq!(client.stats().fast_reads, 50);
    });
}

/// With a zero retry budget and a churning tree, offloaded traversals hit
/// torn reads, restart, and eventually fall back to fast messaging — and
/// every answer stays correct for the pre-loaded items.
#[test]
fn zero_retry_budget_falls_back_to_fast_messaging() {
    let sim = Sim::new();
    sim.run_until(async {
        let (net, server) = build(8, 8_000);
        let base = dataset(8_000);
        // Writer churns the tree continuously.
        let mut writer = attach(&net, &server, ClientConfig::default(), 2);
        let writer_task = spawn(async move {
            // Concentrate churn in one small region so the reader's
            // traversals hit the very leaves being rewritten.
            for i in 0..3_000u64 {
                let x = 0.4 + (i as f64 * 0.000017) % 0.05;
                writer
                    .insert(Rect::new(x, x, x + 0.003, x + 0.003), 5_000_000 + i)
                    .await;
            }
        });
        let mut reader = attach(
            &net,
            &server,
            ClientConfig {
                mode: AccessMode::Offloading,
                multi_issue: true,
                max_read_retries: 0,
                meta_cache_ttl: SimDuration::ZERO,
                ..ClientConfig::default()
            },
            3,
        );
        let mut restarts_seen = 0;
        for i in 0..300u64 {
            let x = 0.38 + (i as f64 * 0.0001) % 0.04;
            let q = Rect::new(x, x, x + 0.08, x + 0.08);
            let got = reader.search(&q).await;
            for (r, d) in base.iter().filter(|(r, _)| r.intersects(&q)) {
                assert!(got.contains(d), "query {i} lost {d} ({r:?})");
            }
            restarts_seen = reader.stats().offload_restarts;
        }
        writer_task.await;
        assert!(
            restarts_seen > 0,
            "churn with zero retries must cause restarts"
        );
    });
}

/// A tiny ring with multi-segment responses exercises wrap-around and
/// backpressure continuously without corrupting the stream.
#[test]
fn starved_ring_stays_correct() {
    let sim = Sim::new();
    sim.run_until(async {
        let net = Network::new();
        let profile = infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let server = CatfishServer::build(
            &net,
            &profile,
            ServerConfig {
                cores: 4,
                mode: ServerMode::EventDriven,
                ring_capacity: 2048,          // tiny: constant wrap pressure
                response_segment_results: 10, // many segments per response
                ..ServerConfig::default()
            },
            RTreeConfig::with_max_entries(88),
            dataset(4_000),
            &rkeys,
        );
        let mut client = attach(&net, &server, ClientConfig::default(), 4);
        for i in 0..30u64 {
            let x = (i as f64 * 0.03) % 0.6;
            // Broad queries: hundreds of results, dozens of segments.
            let q = Rect::new(x, x, x + 0.3, x + 0.3);
            let mut got = client.search(&q).await;
            let mut expect = server.with_index(|t| t.search(&q));
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got.len(), expect.len(), "query {i}");
            assert_eq!(got, expect, "query {i}");
        }
    });
}

/// The polling server stays correct (if slower) when connections far
/// exceed cores.
#[test]
fn polling_oversubscription_is_correct() {
    let sim = Sim::new();
    sim.run_until(async {
        let net = Network::new();
        let profile = infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let server = CatfishServer::build(
            &net,
            &profile,
            ServerConfig {
                cores: 2,
                mode: ServerMode::Polling,
                quantum: SimDuration::from_micros(200),
                ..ServerConfig::default()
            },
            RTreeConfig::with_max_entries(88),
            dataset(2_000),
            &rkeys,
        );
        let mut handles = Vec::new();
        for c in 0..12u64 {
            let mut client = attach(&net, &server, ClientConfig::default(), 10 + c);
            let expected = server.clone();
            handles.push(spawn(async move {
                for i in 0..20u64 {
                    let x = ((c * 31 + i) as f64 * 0.013) % 0.8;
                    let q = Rect::new(x, x, x + 0.05, x + 0.05);
                    let mut got = client.search(&q).await;
                    let mut expect = expected.with_index(|t| t.search(&q));
                    got.sort_unstable();
                    expect.sort_unstable();
                    assert_eq!(got, expect, "client {c} query {i}");
                }
            }));
        }
        for h in handles {
            h.await;
        }
        // All 12 pollers burned CPU: utilization is pinned while 2 cores
        // serve 12 polling workers.
        assert!(server.cpu().busy_time() > SimDuration::from_millis(1));
    });
}

/// Deletes interleaved with offloaded reads: freed-and-reused chunks are
/// either decoded consistently or rejected and retried — results never
/// contain items that were deleted before the run started.
#[test]
fn offloading_correct_under_deletes() {
    let sim = Sim::new();
    sim.run_until(async {
        let (net, server) = build(8, 6_000);
        let base = dataset(6_000);
        let (delete_half, keep_half) = base.split_at(3_000);
        let mut deleter = attach(&net, &server, ClientConfig::default(), 5);
        let del: Vec<_> = delete_half.to_vec();
        let deleter_task = spawn(async move {
            for (r, d) in del {
                assert!(deleter.delete(r, d).await);
            }
        });
        let mut reader = attach(
            &net,
            &server,
            ClientConfig {
                mode: AccessMode::Offloading,
                multi_issue: true,
                meta_cache_ttl: SimDuration::ZERO,
                ..ClientConfig::default()
            },
            6,
        );
        for i in 0..150u64 {
            let x = (i as f64 * 0.0053) % 0.85;
            let q = Rect::new(x, x, x + 0.05, x + 0.05);
            let got = reader.search(&q).await;
            // Items in the kept half must always be visible.
            for (r, d) in keep_half.iter().filter(|(r, _)| r.intersects(&q)) {
                assert!(got.contains(d), "query {i} lost kept item {d} ({r:?})");
            }
        }
        deleter_task.await;
        server.with_index(|t| t.check_invariants()).unwrap();
    });
}

/// The client-side level cache returns identical results while skipping
/// repeat reads of the top levels.
#[test]
fn level_cache_correct_and_effective() {
    let sim = Sim::new();
    sim.run_until(async {
        let (net, server) = build(8, 10_000);
        let mut cached = attach(
            &net,
            &server,
            ClientConfig {
                mode: AccessMode::Offloading,
                multi_issue: true,
                cache_levels: 2,
                meta_cache_ttl: SimDuration::from_millis(100),
                ..ClientConfig::default()
            },
            7,
        );
        let mut plain = attach(
            &net,
            &server,
            ClientConfig {
                mode: AccessMode::Offloading,
                multi_issue: true,
                cache_levels: 0,
                ..ClientConfig::default()
            },
            8,
        );
        for i in 0..60u64 {
            let x = (i as f64 * 0.013) % 0.85;
            let q = Rect::new(x, x, x + 0.05, x + 0.05);
            let mut a = cached.search(&q).await;
            let mut b = plain.search(&q).await;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {i}");
        }
        assert!(cached.stats().cache_hits > 0, "cache never hit");
        assert_eq!(plain.stats().cache_hits, 0);
        assert!(
            cached.stats().chunks_fetched < plain.stats().chunks_fetched,
            "cache must reduce fetches: {} vs {}",
            cached.stats().chunks_fetched,
            plain.stats().chunks_fetched
        );
    });
}

/// Cache staleness is bounded by the TTL: after the tree grows (new root,
/// redistributed entries), searches issued once the TTL has expired see
/// everything again.
#[test]
fn stale_level_cache_recovers_after_ttl() {
    let sim = Sim::new();
    sim.run_until(async {
        let (net, server) = build(8, 2_000);
        let base = dataset(2_000);
        let ttl = SimDuration::from_millis(5);
        let mut reader = attach(
            &net,
            &server,
            ClientConfig {
                mode: AccessMode::Offloading,
                multi_issue: true,
                cache_levels: 3,
                meta_cache_ttl: ttl,
                ..ClientConfig::default()
            },
            9,
        );
        // Warm the cache.
        let q0 = Rect::new(0.1, 0.1, 0.2, 0.2);
        let _ = reader.search(&q0).await;
        assert!(reader.stats().meta_refreshes >= 1);
        // Grow the tree enough to add a level (root relocates, entries
        // redistribute between the old root and its new sibling).
        let mut writer = attach(&net, &server, ClientConfig::default(), 10);
        for i in 0..30_000u64 {
            let x = (i as f64 * 0.0000317) % 0.95;
            writer
                .insert(Rect::new(x, x, x + 0.001, x + 0.001), 9_000_000 + i)
                .await;
        }
        // Let every cached entry expire, then verify full visibility.
        sleep(ttl + SimDuration::from_millis(1)).await;
        for i in 0..40u64 {
            let x = (i as f64 * 0.019) % 0.85;
            let q = Rect::new(x, x, x + 0.06, x + 0.06);
            let got = reader.search(&q).await;
            for (r, d) in base.iter().filter(|(r, _)| r.intersects(&q)) {
                assert!(got.contains(d), "query {i} lost {d} ({r:?})");
            }
        }
        assert!(reader.stats().meta_refreshes >= 2, "meta must be re-read");
    });
}

/// kNN requests through the protocol return the exact same neighbors the
/// server's tree computes locally.
#[test]
fn protocol_knn_matches_local() {
    let sim = Sim::new();
    sim.run_until(async {
        let (net, server) = build(4, 5_000);
        let mut client = attach(&net, &server, ClientConfig::default(), 20);
        for probe in 0..25u64 {
            let x = (probe as f64 * 0.037) % 1.0;
            let y = (probe as f64 * 0.053) % 1.0;
            let got = client.nearest(x, y, 8).await;
            let expect = server.with_index(|t| t.nearest(x, y, 8));
            assert_eq!(got.len(), 8, "probe {probe}");
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(g.1, e.data, "probe {probe}");
            }
        }
    });
}

/// Offloaded kNN (best-first over one-sided reads) matches the server's
/// local computation and touches no server CPU.
#[test]
fn offloaded_knn_matches_local() {
    let sim = Sim::new();
    sim.run_until(async {
        let (net, server) = build(4, 5_000);
        let mut client = attach(
            &net,
            &server,
            ClientConfig {
                mode: AccessMode::Offloading,
                ..ClientConfig::default()
            },
            21,
        );
        let busy_before = server.cpu().busy_time();
        for probe in 0..15u64 {
            let x = (probe as f64 * 0.041) % 1.0;
            let y = (probe as f64 * 0.029) % 1.0;
            let got = client.nearest_offloaded(x, y, 6).await;
            let expect = server.with_index(|t| t.nearest(x, y, 6));
            assert_eq!(got.len(), 6, "probe {probe}");
            // Ties at equal distance may order differently between the
            // local and remote heaps; compare the distance sequences.
            for (g, e) in got.iter().zip(&expect) {
                let gd = catfish_rtree::min_dist_sq(&g.0, x, y);
                assert!(
                    (gd - e.dist_sq).abs() < 1e-12,
                    "probe {probe}: distance {gd} vs {}",
                    e.dist_sq
                );
            }
        }
        assert_eq!(
            server.cpu().busy_time(),
            busy_before,
            "offloaded kNN must not consume server CPU"
        );
    });
}
