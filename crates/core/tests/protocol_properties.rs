//! Property-based tests of the wire protocol: message codec round-trips
//! and ring-buffer stream integrity under arbitrary payload sequences.

use catfish_core::conn::{establish, RkeyAllocator};
use catfish_core::msg::Message;
use catfish_rdma::{Endpoint, RdmaProfile};
use catfish_rtree::Rect;
use catfish_simnet::{LinkSpec, Network, Sim, SimDuration};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.5, 0.0f64..0.5)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_results() -> impl Strategy<Value = Vec<(Rect, u64)>> {
    prop::collection::vec((arb_rect(), any::<u64>()), 0..50)
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), arb_rect()).prop_map(|(seq, rect)| Message::SearchReq { seq, rect }),
        (any::<u32>(), arb_rect(), any::<u64>()).prop_map(|(seq, rect, data)| Message::InsertReq {
            seq,
            rect,
            data
        }),
        (any::<u32>(), arb_rect(), any::<u64>()).prop_map(|(seq, rect, data)| Message::DeleteReq {
            seq,
            rect,
            data
        }),
        (any::<u32>(), arb_results())
            .prop_map(|(seq, results)| Message::ResponseCont { seq, results }),
        (any::<u32>(), arb_results(), any::<u32>()).prop_map(|(seq, results, status)| {
            Message::ResponseEnd {
                seq,
                results,
                status,
            }
        }),
        any::<u16>().prop_map(|util_permille| Message::Heartbeat { util_permille }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every message round-trips exactly, and encoded_len is exact.
    #[test]
    fn message_codec_round_trips(msg in arb_message()) {
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        prop_assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    /// Decoding never panics on arbitrary bytes.
    #[test]
    fn message_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = Message::decode(&bytes);
    }

    /// An arbitrary sequence of payloads pushed through a (small) ring
    /// arrives complete, in order, and uncorrupted — regardless of sizes,
    /// wraps, or backpressure stalls.
    #[test]
    fn ring_stream_integrity(
        payload_sizes in prop::collection::vec(1usize..300, 1..60),
        ring_kb in 1usize..4,
    ) {
        let sim = Sim::new();
        let sizes = payload_sizes.clone();
        sim.run_until(async move {
            let net = Network::new();
            let spec = LinkSpec::gbps(100.0, SimDuration::from_micros(1));
            let a = Endpoint::new(&net, net.add_node(spec), RdmaProfile::default());
            let b = Endpoint::new(&net, net.add_node(spec), RdmaProfile::default());
            let rkeys = RkeyAllocator::new();
            let (ca, sb) = establish(&a, &b, ring_kb * 1024, &rkeys);
            let sender_sizes = sizes.clone();
            let sender = catfish_simnet::spawn(async move {
                for (i, len) in sender_sizes.into_iter().enumerate() {
                    let mut payload = vec![(i % 251) as u8; len];
                    payload[0] = (i % 256) as u8;
                    ca.tx.send(&payload, i as u32).await;
                }
            });
            for (i, len) in sizes.into_iter().enumerate() {
                let msg = sb.rx.wait_message().await;
                assert_eq!(msg.len(), len, "message {i} length");
                assert_eq!(msg[0], (i % 256) as u8, "message {i} order marker");
                assert!(
                    msg[1..].iter().all(|&b| b == (i % 251) as u8),
                    "message {i} body corrupt"
                );
            }
            sender.await;
        });
    }
}
