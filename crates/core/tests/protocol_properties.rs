//! Property-based tests of the wire protocol: [`WireCodec`] round-trips
//! for *both* service message sets (R-tree and KV) through one generic
//! property, and ring-buffer stream integrity under arbitrary payload
//! sequences.

use std::fmt::Debug;

use catfish_core::conn::{establish, RkeyAllocator};
use catfish_core::kv::{KvMessage, KvWire};
use catfish_core::msg::{Message, RtreeWire};
use catfish_core::service::{HeartbeatInfo, WireCodec};
use catfish_rdma::{Endpoint, RdmaProfile};
use catfish_rtree::Rect;
use catfish_simnet::{LinkSpec, Network, Sim, SimDuration};
use proptest::prelude::*;

/// The single round-trip law every codec must satisfy: decode(encode(m))
/// reproduces m exactly, whichever backend's message set m comes from.
fn assert_codec_round_trips<W: WireCodec>(msg: W::Message)
where
    W::Message: PartialEq + Debug + Clone,
{
    let bytes = W::encode(&msg);
    let back = W::decode(&bytes).expect("well-formed frame decodes");
    assert_eq!(back, msg);
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.5, 0.0f64..0.5)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_results() -> impl Strategy<Value = Vec<(Rect, u64)>> {
    prop::collection::vec((arb_rect(), any::<u64>()), 0..50)
}

fn arb_heartbeat_info() -> impl Strategy<Value = HeartbeatInfo> {
    (
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(
            |(util_permille, wb_fixed_ns, wb_per_kb_ns, fetch_fixed_ns, fetch_per_kb_ns)| {
                HeartbeatInfo {
                    util_permille,
                    wb_fixed_ns,
                    wb_per_kb_ns,
                    fetch_fixed_ns,
                    fetch_per_kb_ns,
                }
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), arb_rect()).prop_map(|(seq, rect)| Message::SearchReq { seq, rect }),
        (any::<u32>(), arb_rect(), any::<u64>()).prop_map(|(seq, rect, data)| Message::InsertReq {
            seq,
            rect,
            data
        }),
        (any::<u32>(), arb_rect(), any::<u64>()).prop_map(|(seq, rect, data)| Message::DeleteReq {
            seq,
            rect,
            data
        }),
        (any::<u32>(), arb_results())
            .prop_map(|(seq, results)| Message::ResponseCont { seq, results }),
        (any::<u32>(), arb_results(), any::<u32>()).prop_map(|(seq, results, status)| {
            Message::ResponseEnd {
                seq,
                results,
                status,
            }
        }),
        arb_heartbeat_info().prop_map(|info| Message::Heartbeat { info }),
    ]
}

/// A doorbell batch of arbitrary (non-batch) R-tree messages.
fn arb_batch_message() -> impl Strategy<Value = Message> {
    prop::collection::vec(arb_message(), 1..8).prop_map(Message::Batch)
}

fn arb_entries() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((any::<u64>(), any::<u64>()), 0..50)
}

fn arb_kv_message() -> impl Strategy<Value = KvMessage> {
    prop_oneof![
        (any::<u32>(), any::<u64>()).prop_map(|(seq, key)| KvMessage::GetReq { seq, key }),
        (any::<u32>(), any::<u64>(), any::<u64>())
            .prop_map(|(seq, key, value)| KvMessage::PutReq { seq, key, value }),
        (any::<u32>(), any::<u64>()).prop_map(|(seq, key)| KvMessage::RemoveReq { seq, key }),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(seq, lo, hi)| KvMessage::RangeReq {
            seq,
            lo,
            hi
        }),
        (any::<u32>(), arb_entries())
            .prop_map(|(seq, entries)| KvMessage::RespCont { seq, entries }),
        (any::<u32>(), arb_entries(), any::<u32>()).prop_map(|(seq, entries, status)| {
            KvMessage::RespEnd {
                seq,
                entries,
                status,
            }
        }),
        arb_heartbeat_info().prop_map(|info| KvMessage::Heartbeat { info }),
    ]
}

/// A doorbell batch of arbitrary (non-batch) KV messages.
fn arb_kv_batch_message() -> impl Strategy<Value = KvMessage> {
    prop::collection::vec(arb_kv_message(), 1..8).prop_map(KvMessage::Batch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every R-tree message round-trips through the generic codec, and
    /// encoded_len is exact.
    #[test]
    fn rtree_codec_round_trips(msg in arb_message()) {
        prop_assert_eq!(msg.encode().len(), msg.encoded_len());
        assert_codec_round_trips::<RtreeWire>(msg);
    }

    /// Every KV message round-trips through the generic codec.
    #[test]
    fn kv_codec_round_trips(msg in arb_kv_message()) {
        assert_codec_round_trips::<KvWire>(msg);
    }

    /// Doorbell batches of arbitrary messages round-trip for both codecs,
    /// and the R-tree batch's encoded_len is exact.
    #[test]
    fn batch_codec_round_trips(rt in arb_batch_message(), kv in arb_kv_batch_message()) {
        prop_assert_eq!(rt.encode().len(), rt.encoded_len());
        assert_codec_round_trips::<RtreeWire>(rt);
        assert_codec_round_trips::<KvWire>(kv);
    }

    /// Decoding never panics on arbitrary bytes — for either codec.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = RtreeWire::decode(&bytes);
        let _ = KvWire::decode(&bytes);
    }

    /// An arbitrary sequence of payloads pushed through a (small) ring
    /// arrives complete, in order, and uncorrupted — regardless of sizes,
    /// wraps, or backpressure stalls.
    #[test]
    fn ring_stream_integrity(
        payload_sizes in prop::collection::vec(1usize..300, 1..60),
        ring_kb in 1usize..4,
    ) {
        let sim = Sim::new();
        let sizes = payload_sizes.clone();
        sim.run_until(async move {
            let net = Network::new();
            let spec = LinkSpec::gbps(100.0, SimDuration::from_micros(1));
            let a = Endpoint::new(&net, net.add_node(spec), RdmaProfile::default());
            let b = Endpoint::new(&net, net.add_node(spec), RdmaProfile::default());
            let rkeys = RkeyAllocator::new();
            let (ca, sb) = establish(&a, &b, ring_kb * 1024, &rkeys);
            let sender_sizes = sizes.clone();
            let sender = catfish_simnet::spawn(async move {
                for (i, len) in sender_sizes.into_iter().enumerate() {
                    let mut payload = vec![(i % 251) as u8; len];
                    payload[0] = (i % 256) as u8;
                    ca.tx.send(&payload, i as u32).await.unwrap();
                }
            });
            for (i, len) in sizes.into_iter().enumerate() {
                let msg = sb.rx.wait_message().await;
                assert_eq!(msg.len(), len, "message {i} length");
                assert_eq!(msg[0], (i % 256) as u8, "message {i} order marker");
                assert!(
                    msg[1..].iter().all(|&b| b == (i % 251) as u8),
                    "message {i} body corrupt"
                );
            }
            sender.await;
        });
    }

    /// A doorbell batch posted at an arbitrary ring offset — priming the
    /// tail with a message of arbitrary size first, so batches straddle
    /// the `WRAP_MARKER` boundary at every capacity/offset combination —
    /// arrives complete, in order, and uncorrupted, even when the batch
    /// must be split across multiple capacity-bounded posts.
    #[test]
    fn batched_sends_straddle_wrap_marker(
        prime in 1usize..700,
        payload_sizes in prop::collection::vec(1usize..200, 2..12),
        ring_kb in 1usize..3,
    ) {
        let sim = Sim::new();
        let sizes = payload_sizes.clone();
        sim.run_until(async move {
            let net = Network::new();
            let spec = LinkSpec::gbps(100.0, SimDuration::from_micros(1));
            let a = Endpoint::new(&net, net.add_node(spec), RdmaProfile::default());
            let b = Endpoint::new(&net, net.add_node(spec), RdmaProfile::default());
            let rkeys = RkeyAllocator::new();
            let (ca, sb) = establish(&a, &b, ring_kb * 1024, &rkeys);
            // Prime: advance the ring tail to an arbitrary offset.
            ca.tx.send(&vec![0xAA; prime], 0).await.unwrap();
            assert_eq!(sb.rx.wait_message().await.len(), prime);
            let payloads: Vec<Vec<u8>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &len)| {
                    let mut p = vec![(i % 251) as u8; len];
                    p[0] = (i % 256) as u8;
                    p
                })
                .collect();
            let expect = payloads.clone();
            let sender = catfish_simnet::spawn(async move {
                assert!(ca.tx.send_batch(&payloads, 7).await.unwrap() >= 1);
            });
            for (i, want) in expect.iter().enumerate() {
                let got = sb.rx.wait_message().await;
                assert_eq!(&got, want, "batched message {i}");
            }
            sender.await;
            assert!(sb.rx.try_pop().is_none(), "no trailing bytes after batch");
        });
    }
}
