//! Properties of the observability layer: the log-bucketed
//! [`LatencyHistogram`] against exact sorted-sample statistics, histogram
//! merging, the structured adaptive-event timeline against Algorithm 1,
//! and (with the `trace` feature) the phase breakdown accounting for the
//! end-to-end latency.

use catfish_core::config::AdaptiveParams;
use catfish_core::{AdaptiveEvent, AdaptiveEventLog, AdaptiveState, LatencyHistogram, RouteChoice};
use catfish_simnet::{sleep, Sim, SimDuration};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record_nanos(s);
    }
    h
}

/// Exact quantile of a sorted sample set, with the same nearest-rank rule
/// the histogram uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((sorted.len() - 1) as f64 * q).floor() as usize;
    sorted[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any reported percentile is within one bucket width of the exact
    /// sorted-Vec percentile — the resolution bound the log-linear
    /// bucketing promises (±12.5% of the value, exact below 8 ns).
    #[test]
    fn quantiles_within_one_bucket_of_exact(
        samples in prop::collection::vec(0u64..200_000_000, 1..500),
        q in 0.0f64..1.0,
    ) {
        let h = hist_of(&samples);
        let mut sorted = samples;
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let got = h.quantile(q).as_nanos();
        let width = LatencyHistogram::bucket_width_at(exact);
        prop_assert!(
            got.abs_diff(exact) <= width,
            "quantile({q}) = {got}, exact = {exact}, bucket width = {width}"
        );
    }

    /// Merging histograms recorded separately is indistinguishable from
    /// one histogram over the concatenated samples.
    #[test]
    fn merge_equals_concatenation(
        a in prop::collection::vec(0u64..1_000_000_000, 0..300),
        b in prop::collection::vec(0u64..1_000_000_000, 0..300),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let both: Vec<u64> = a.iter().chain(&b).copied().collect();
        let concat = hist_of(&both);
        prop_assert_eq!(merged.len(), concat.len());
        prop_assert_eq!(merged.sum_nanos(), concat.sum_nanos());
        prop_assert_eq!(merged.min(), concat.min());
        prop_assert_eq!(merged.max(), concat.max());
        let mb: Vec<_> = merged.nonzero_buckets().collect();
        let cb: Vec<_> = concat.nonzero_buckets().collect();
        prop_assert_eq!(mb, cb);
    }
}

/// A scripted heartbeat sequence produces the event timeline Algorithm 1
/// prescribes: consecutive busy heartbeats escalate `r_busy` by one each
/// with `r_off` drawn from the doubling band
/// `[(r_busy - 1) * N, r_busy * N)`, a calm heartbeat emits one
/// `BusyReset`, timestamps never go backwards, and every decision emits a
/// `Route` event.
#[test]
fn scripted_heartbeats_match_algorithm_one_bands() {
    let params = AdaptiveParams::default();
    let n = u64::from(params.n_backoff);
    let sim = Sim::new();
    let events = sim.run_until(async move {
        let log = AdaptiveEventLog::new();
        let mut s = AdaptiveState::new(AdaptiveParams::default(), 7);
        s.set_event_log(log.for_client(3));
        // Get past the randomized consumption phase, then feed four busy
        // heartbeats and one calm one, each a full interval apart.
        sleep(SimDuration::from_millis(15)).await;
        for _ in 0..4 {
            sleep(SimDuration::from_millis(11)).await;
            s.note_heartbeat(1.0);
            s.decide();
        }
        sleep(SimDuration::from_millis(11)).await;
        s.note_heartbeat(0.2);
        s.decide();
        log.snapshot()
    });

    assert!(!events.is_empty());
    let mut last_t = None;
    let mut routes = 0;
    let mut consumed = 0;
    let mut expected_busy = 0u32;
    let mut resets = 0;
    for rec in &events {
        assert_eq!(rec.client, 3);
        if let Some(prev) = last_t {
            assert!(rec.t >= prev, "timestamps regress: {rec}");
        }
        last_t = Some(rec.t);
        match rec.event {
            AdaptiveEvent::HeartbeatConsumed { util } => {
                consumed += 1;
                assert!((0.0..=1.0).contains(&util));
            }
            AdaptiveEvent::BandEscalated { r_busy, r_off } => {
                expected_busy += 1;
                assert_eq!(r_busy, expected_busy, "r_busy increments by one");
                let lo = u64::from(r_busy - 1) * n;
                let hi = u64::from(r_busy) * n;
                assert!(
                    (lo..hi).contains(&u64::from(r_off)),
                    "r_off {r_off} outside band [{lo}, {hi}) at r_busy {r_busy}"
                );
            }
            AdaptiveEvent::BusyReset => resets += 1,
            AdaptiveEvent::Route { .. } => routes += 1,
            AdaptiveEvent::StaleHeartbeat { .. } => {
                panic!("heartbeats flow throughout this scenario")
            }
            AdaptiveEvent::FetchTransition { .. } => {
                panic!("fetching is disabled under default params")
            }
        }
    }
    // Five decisions, five heartbeats consumed; the band never exceeds
    // r_busy * N rounds, so four busy heartbeats escalate every time
    // (draining at one round per decision cannot outpace the threshold).
    assert_eq!(routes, 5, "one Route per decide()");
    assert_eq!(consumed, 5, "one fresh heartbeat consumed per interval");
    assert_eq!(expected_busy, 4, "each busy heartbeat escalates once");
    assert_eq!(resets, 1, "the calm heartbeat resets the busy counter");

    // The JSONL rendering carries every event with its kind tag.
    for rec in &events {
        let line = rec.to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains(&format!("\"event\":\"{}\"", rec.event.kind())));
    }
}

/// A scripted three-way timeline: with fetching enabled, a moderately
/// busy server plus a large-result EWMA routes **Fetch** (entering the
/// regime emits one `FetchTransition`), busy heartbeats still escalate
/// the Algorithm 1 band whose drain routes **Offload** (the band
/// outranks the fetch regime), the drained band falls back to Fetch,
/// and a calm heartbeat below the utilization floor exits the regime
/// (one closing `FetchTransition`) and routes **Fast**.
#[test]
fn scripted_three_way_timeline_orders_offload_over_fetch_over_fast() {
    let params = AdaptiveParams::three_way();
    let sim = Sim::new();
    let (routes, events) = sim.run_until(async move {
        let log = AdaptiveEventLog::new();
        let mut s = AdaptiveState::new(params, 7);
        s.set_event_log(log.for_client(1));
        s.set_item_bytes(40);
        let mut routes = Vec::new();
        // Past the randomized consumption phase; grow the response EWMA
        // well above the fetch threshold before any heartbeat arrives.
        sleep(SimDuration::from_millis(15)).await;
        for _ in 0..6 {
            s.note_response_items(1024);
        }
        // Moderately busy: above the fetch floor, below the busy
        // threshold — the fetch regime engages without band escalation.
        sleep(SimDuration::from_millis(11)).await;
        s.note_heartbeat(0.7);
        routes.push(s.decide_route());
        // Two saturated heartbeats: the second guarantees r_busy = 2 and
        // an r_off draw of at least N, so the band drains as Offload.
        for _ in 0..2 {
            sleep(SimDuration::from_millis(11)).await;
            s.note_heartbeat(1.0);
            routes.push(s.decide_route());
        }
        // Drain the band dry (no fresh heartbeats): Offload until r_off
        // hits zero, then the still-active fetch regime takes over.
        for _ in 0..24 {
            routes.push(s.decide_route());
        }
        // Calm heartbeat below the utilization floor: regime exits.
        sleep(SimDuration::from_millis(11)).await;
        s.note_heartbeat(0.2);
        routes.push(s.decide_route());
        (routes, log.snapshot())
    });

    assert_eq!(
        routes[0],
        RouteChoice::Fetch,
        "busy-but-not-saturated server with large results fetches"
    );
    assert_eq!(
        routes[2],
        RouteChoice::Offload,
        "the second saturated heartbeat forces a non-empty band"
    );
    let offloads = routes
        .iter()
        .filter(|r| **r == RouteChoice::Offload)
        .count();
    assert!(
        offloads >= 8,
        "r_busy = 2 draws r_off >= 8, all drained as Offload (got {offloads})"
    );
    assert_eq!(
        *routes.iter().rev().nth(1).unwrap(),
        RouteChoice::Fetch,
        "the drained band falls back to the fetch regime"
    );
    assert_eq!(
        *routes.last().unwrap(),
        RouteChoice::Fast,
        "a calm server routes fast messaging again"
    );
    assert!(
        !routes.contains(&RouteChoice::Fast)
            || routes.iter().position(|r| *r == RouteChoice::Fast) == Some(routes.len() - 1),
        "fast messaging only after the calm heartbeat"
    );

    // The regime was entered exactly once and exited exactly once, in
    // that order, with the entering edge carrying an EWMA above the
    // threshold it crossed.
    let transitions: Vec<_> = events
        .iter()
        .filter_map(|rec| match rec.event {
            AdaptiveEvent::FetchTransition {
                entering,
                ewma_items,
                threshold_items,
            } => Some((entering, ewma_items, threshold_items)),
            _ => None,
        })
        .collect();
    assert_eq!(transitions.len(), 2, "one entering edge, one exit edge");
    assert!(transitions[0].0 && !transitions[1].0);
    assert!(transitions[0].1 >= transitions[0].2);
    for rec in &events {
        let line = rec.to_json();
        assert!(line.contains(&format!("\"event\":\"{}\"", rec.event.kind())));
    }
}

/// With tracing compiled in, the request-path phases partition the
/// end-to-end latency: for a single closed-loop fast-messaging client
/// (no queueing overlap), ring enqueue + server queue + dispatch + index
/// execution + response transit lands within 5% of the end-to-end p50.
#[cfg(feature = "trace")]
#[test]
fn phase_breakdown_accounts_for_end_to_end_p50() {
    use catfish_core::config::Scheme;
    use catfish_core::harness::{run_experiment, ExperimentSpec};
    use catfish_core::Phase;
    use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

    let spec = ExperimentSpec {
        scheme: Scheme::FastMessaging,
        clients: 1,
        client_nodes: 1,
        dataset: uniform_rects(3_000, 1e-3, 9),
        trace: TraceSpec::search_only(ScaleDist::Fixed { bound: 0.02 }, 200),
        collect_phase_spans: true,
        ..ExperimentSpec::default()
    };
    let r = run_experiment(&spec);
    assert!(!r.phase_hists.is_empty(), "spans were recorded");
    let path = [
        Phase::RingEnqueue,
        Phase::ServerQueue,
        Phase::Dispatch,
        Phase::IndexExec,
        Phase::RespTransit,
    ];
    let sum_ns: u64 = r
        .phase_hists
        .iter()
        .filter(|(p, _)| path.contains(p))
        .map(|(_, h)| h.summary().p50.as_nanos())
        .sum();
    let e2e_ns = r.hist.summary().p50.as_nanos();
    assert!(e2e_ns > 0);
    let gap = (sum_ns as f64 / e2e_ns as f64 - 1.0).abs();
    assert!(
        gap < 0.05,
        "phase p50 sum {sum_ns} ns vs end-to-end p50 {e2e_ns} ns (gap {:.1}%)",
        gap * 100.0
    );
}

/// Without the `trace` feature the same run records nothing — the span
/// call sites are no-ops.
#[cfg(not(feature = "trace"))]
#[test]
fn spans_are_noops_without_the_trace_feature() {
    use catfish_core::config::Scheme;
    use catfish_core::harness::{run_experiment, ExperimentSpec};
    use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

    let spec = ExperimentSpec {
        scheme: Scheme::FastMessaging,
        clients: 1,
        client_nodes: 1,
        dataset: uniform_rects(3_000, 1e-3, 9),
        trace: TraceSpec::search_only(ScaleDist::Fixed { bound: 0.02 }, 50),
        collect_phase_spans: true,
        ..ExperimentSpec::default()
    };
    let r = run_experiment(&spec);
    assert!(r.phase_hists.is_empty());
    assert!(!catfish_core::TraceSink::enabled());
}
