//! Recovery properties under seeded fault injection: whatever mix of
//! dropped writes, duplicated completions, delays, corrupted frames, and
//! worker stalls a [`FaultPlan`] throws at the service, every acknowledged
//! mutation lands in the tree exactly once and the recovery counters
//! balance. A scripted crash-restart window checks the two halves of the
//! durability story separately: writes acknowledged before the crash are
//! never lost, and writes issued into the window are retransmitted until
//! the restarted worker serves them.

use catfish_core::config::{AccessMode, AdaptiveParams, ClientConfig, ServerConfig, ServerMode};
use catfish_core::conn::RkeyAllocator;
use catfish_core::server::CatfishServer;
use catfish_core::CatfishClient;
use catfish_rdma::profile::infiniband_100g;
use catfish_rdma::{Endpoint, FaultConfig, FaultPlan, RdmaProfile};
use catfish_rtree::{RTreeConfig, Rect};
use catfish_simnet::{now, Network, Sim, SimDuration};
use proptest::prelude::*;

/// Ids far above the pre-loaded dataset, so occurrence counts are exact.
const ID_BASE: u64 = 1_000_000;

fn dataset(n: u64) -> Vec<(Rect, u64)> {
    (0..n)
        .map(|i| {
            let x = (i % 128) as f64 / 128.0;
            let y = (i / 128) as f64 / 128.0;
            (Rect::new(x, y, x + 0.004, y + 0.004), i)
        })
        .collect()
}

/// One grid cell per op: unique, disjoint from each other.
fn op_rect(op: u64) -> Rect {
    let x = (op % 311) as f64 / 311.0 * 0.9;
    let y = (op / 311) as f64 / 311.0 * 0.9;
    Rect::new(x, y, x + 0.0005, y + 0.0005)
}

fn build(cores: usize, items: u64) -> (Network, CatfishServer) {
    let net = Network::new();
    let profile = infiniband_100g();
    let rkeys = RkeyAllocator::new();
    let server = CatfishServer::build(
        &net,
        &profile,
        ServerConfig {
            cores,
            mode: ServerMode::EventDriven,
            heartbeat_interval: SimDuration::from_millis(1),
            ..ServerConfig::default()
        },
        RTreeConfig::with_max_entries(88),
        dataset(items),
        &rkeys,
    );
    (net, server)
}

fn retry_config() -> ClientConfig {
    ClientConfig {
        mode: AccessMode::Adaptive(AdaptiveParams {
            heartbeat_interval: SimDuration::from_millis(1),
            ..AdaptiveParams::default()
        }),
        request_timeout: SimDuration::from_micros(400),
        max_retries: 64,
        ..ClientConfig::default()
    }
}

fn attach_faulty(
    net: &Network,
    server: &CatfishServer,
    plan: &FaultPlan,
    cfg: ClientConfig,
    seed: u64,
) -> CatfishClient {
    let profile = infiniband_100g();
    let ep = Endpoint::new(net, net.add_node(profile.link), RdmaProfile::default());
    ep.set_fault_plan(Some(plan.clone()));
    let ch = server.accept(&ep);
    CatfishClient::new(ch, server.remote_handle(), cfg, seed)
}

/// Inserts `ops` uniquely-tagged rectangles through `client`, asserting
/// every acknowledgement, then returns per-id occurrence counts from a
/// server-side audit: (lost, duplicated).
async fn run_inserts(client: &mut CatfishClient, base: u64, ops: u64) {
    for i in 0..ops {
        let id = ID_BASE + base + i;
        assert!(
            client.insert(op_rect(base + i), id).await,
            "insert of id {id} gave up despite a generous retry budget"
        );
    }
}

fn audit(server: &CatfishServer, total_ops: u64) -> (usize, usize) {
    let mut lost = 0;
    let mut duplicated = 0;
    for op in 0..total_ops {
        let id = ID_BASE + op;
        let hits =
            server.with_index(|t| t.search(&op_rect(op)).iter().filter(|d| **d == id).count());
        match hits {
            0 => lost += 1,
            1 => {}
            _ => duplicated += 1,
        }
    }
    (lost, duplicated)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Exactly-once under an arbitrary fault mix: no acknowledged insert
    /// is lost, none is applied twice, and the recovery counters balance —
    /// retransmissions only ever follow timeouts, and every duplicate the
    /// server absorbed is explained by a client retransmission or an
    /// injected duplicate completion.
    #[test]
    fn arbitrary_fault_mix_is_exactly_once(
        drop_write in 0.0f64..0.15,
        duplicate in 0.0f64..0.10,
        delay in 0.0f64..0.20,
        corrupt in 0.0f64..0.05,
        stall in 0.0f64..0.02,
        suppress_heartbeat in 0.0f64..0.50,
        seed in 0u64..1_000_000,
    ) {
        let cfg = FaultConfig {
            drop_write,
            duplicate,
            delay,
            corrupt,
            stall,
            suppress_heartbeat,
            ..FaultConfig::off()
        };
        let sim = Sim::new();
        let (stats, injected, lost, duplicated) = sim.run_until(async move {
            let (net, server) = build(2, 2_000);
            let plan = FaultPlan::new(cfg, seed);
            server.endpoint().set_fault_plan(Some(plan.clone()));
            server.start_heartbeats();
            let mut client = attach_faulty(&net, &server, &plan, retry_config(), seed);
            let ops = 48u64;
            run_inserts(&mut client, 0, ops).await;
            let (lost, duplicated) = audit(&server, ops);
            let mut stats = client.stats();
            let ss = server.stats();
            stats.dup_drops += ss.dup_drops;
            stats.checksum_failures += ss.checksum_failures;
            stats.resyncs += ss.resyncs;
            (stats, plan.counters(), lost, duplicated)
        });
        prop_assert_eq!(lost, 0, "acknowledged inserts vanished");
        prop_assert_eq!(duplicated, 0, "an insert was applied twice");
        prop_assert!(
            stats.retransmits <= stats.timeouts,
            "retransmits ({}) must not exceed timeouts ({}) on the single-op path",
            stats.retransmits,
            stats.timeouts
        );
        prop_assert!(
            stats.dup_drops <= stats.retransmits + injected.completions_duplicated,
            "dup_drops ({}) exceed retransmits ({}) + injected duplicates ({})",
            stats.dup_drops,
            stats.retransmits,
            injected.completions_duplicated
        );
        // A flipped payload byte never survives the CRC, but a frame
        // corrupted in flight as the run ends may go unread.
        prop_assert!(
            stats.checksum_failures <= injected.frames_corrupted,
            "more CRC failures ({}) than frames corrupted ({})",
            stats.checksum_failures,
            injected.frames_corrupted
        );
    }
}

/// A scripted crash-restart window: the worker discards every frame inside
/// `[t0 + 1ms, t0 + 3ms)` as if the process died and restarted with its
/// dedup state intact. Writes acknowledged before the window stay in the
/// tree; writes issued into it are retransmitted until the revived worker
/// answers. Nothing is lost, nothing applied twice.
#[test]
fn crash_window_loses_nothing_acked() {
    let sim = Sim::new();
    let (stats, injected, lost, duplicated) = sim.run_until(async move {
        let (net, server) = build(2, 2_000);
        let cfg = FaultConfig {
            crash_window: Some((
                now() + SimDuration::from_millis(1),
                SimDuration::from_millis(2),
            )),
            ..FaultConfig::off()
        };
        let plan = FaultPlan::new(cfg, 7);
        server.endpoint().set_fault_plan(Some(plan.clone()));
        server.start_heartbeats();
        let mut client = attach_faulty(&net, &server, &plan, retry_config(), 7);
        // ~110us per fault-free insert: the first handful complete before
        // the window opens, the middle of the run lands inside it, and the
        // tail completes after the worker comes back.
        let ops = 60u64;
        run_inserts(&mut client, 0, ops).await;
        let (lost, duplicated) = audit(&server, ops);
        let mut stats = client.stats();
        stats.dup_drops += server.stats().dup_drops;
        (stats, plan.counters(), lost, duplicated)
    });
    assert!(
        injected.crash_discards > 0,
        "the workload never hit the crash window — timing drifted"
    );
    assert_eq!(lost, 0, "an acknowledged insert vanished across the crash");
    assert_eq!(duplicated, 0, "a retransmitted insert was applied twice");
    assert!(
        stats.retransmits > 0,
        "requests issued into the crash window must have been retransmitted"
    );
    assert!(stats.retransmits <= stats.timeouts);
}

/// Faults confined to one client's endpoint never leak: a clean client
/// sharing the server with a heavily faulted one sees zero timeouts and
/// identical search results.
#[test]
fn faults_are_isolated_to_the_faulty_connection() {
    let sim = Sim::new();
    sim.run_until(async move {
        let (net, server) = build(2, 2_000);
        server.start_heartbeats();
        let plan = FaultPlan::new(
            FaultConfig {
                drop_write: 0.2,
                corrupt: 0.05,
                ..FaultConfig::off()
            },
            11,
        );
        // The faulty plan rides only the faulty client's endpoint — the
        // server endpoint stays clean, as do other connections.
        let mut faulty = attach_faulty(&net, &server, &plan, retry_config(), 11);
        let profile = infiniband_100g();
        let ep = Endpoint::new(&net, net.add_node(profile.link), RdmaProfile::default());
        let ch = server.accept(&ep);
        let mut clean = CatfishClient::new(ch, server.remote_handle(), retry_config(), 12);
        run_inserts(&mut faulty, 0, 32).await;
        for i in 0..32u64 {
            let q = op_rect(i);
            let got = clean.search(&q).await;
            assert!(got.contains(&(ID_BASE + i)));
        }
        let (lost, duplicated) = audit(&server, 32);
        assert_eq!((lost, duplicated), (0, 0));
        assert_eq!(clean.stats().timeouts, 0, "clean connection saw faults");
        assert_eq!(clean.stats().retransmits, 0);
        assert!(
            faulty.stats().timeouts > 0 || plan.counters().total() == 0,
            "the faulty connection should have observed its faults"
        );
    });
}
