//! Property tests of the sharded cluster: under arbitrary interleavings
//! of window searches, inserts, deletes, and kNN queries — with query
//! rectangles wide enough to span shard boundaries — the scatter-gather
//! [`CatfishClusterClient`] produces results set-equal to a single
//! authoritative reference model, for every shard count.
//!
//! This is the correctness law that makes the space partition an
//! implementation detail: no operation may observe which shard owns what.

use catfish_core::client::CatfishClusterClient;
use catfish_core::config::{AccessMode, ClientConfig, ServerConfig, ServerMode};
use catfish_core::conn::RkeyAllocator;
use catfish_core::server::CatfishCluster;
use catfish_core::service::ShardMap;
use catfish_rdma::profile::infiniband_100g;
use catfish_rtree::{min_dist_sq, RTreeConfig, Rect};
use catfish_simnet::{Network, Sim};
use catfish_workload::uniform_rects;
use proptest::prelude::*;

/// One step of an interleaved workload, as generated data.
#[derive(Debug, Clone)]
enum Op {
    /// Window query; compared set-wise against the model scan.
    Search(Rect),
    /// Insert at this rectangle (payload id assigned at execution).
    Insert(Rect),
    /// Delete the `i % live`-th live item (no-op while none are live).
    Delete(usize),
    /// k-nearest-neighbour query at (x, y).
    Nearest(f64, f64, u32),
}

/// Rectangles up to 0.5 wide: with 2–4 shards the x-cuts are at most 0.5
/// apart, so a healthy fraction of these straddle at least one boundary.
fn arb_query_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1.0, 0.0f64..1.0, 1e-4f64..0.5, 1e-4f64..0.2)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0)))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_query_rect().prop_map(Op::Search),
        arb_query_rect().prop_map(Op::Insert),
        any::<u32>().prop_map(|i| Op::Delete(i as usize)),
        (0.0f64..1.0, 0.0f64..1.0, 1u32..6).prop_map(|(x, y, k)| Op::Nearest(x, y, k)),
    ]
}

/// The reference: a flat list of live items, queried by linear scan.
/// Equivalent to (and simpler than) a single-server tree, and obviously
/// correct.
struct Model {
    live: Vec<(Rect, u64)>,
}

impl Model {
    fn search(&self, q: &Rect) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .live
            .iter()
            .filter(|(r, _)| r.intersects(q))
            .map(|&(_, d)| d)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn nearest(&self, x: f64, y: f64, k: u32) -> Vec<(Rect, u64)> {
        let mut all = self.live.clone();
        all.sort_by_key(|(r, d)| (min_dist_sq(r, x, y).to_bits(), *d));
        all.truncate(k as usize);
        all
    }
}

/// Runs `ops` against both a `shards`-way cluster and the model, checking
/// set-equality after every operation.
fn check_cluster_matches_model(shards: usize, dataset_seed: u64, ops: Vec<Op>) {
    let sim = Sim::new();
    sim.run_until(async move {
        let net = Network::new();
        let profile = infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let dataset = uniform_rects(300, 1e-3, dataset_seed);
        let mut model = Model {
            live: dataset.clone(),
        };
        let cluster = CatfishCluster::build(
            &net,
            &profile,
            ServerConfig {
                cores: 2,
                mode: ServerMode::EventDriven,
                ..ServerConfig::default()
            },
            RTreeConfig::default(),
            dataset,
            shards,
            &rkeys,
        );
        let mut client = CatfishClusterClient::connect(
            &cluster,
            &net,
            &profile,
            ClientConfig {
                mode: AccessMode::FastMessaging,
                ..ClientConfig::default()
            },
            dataset_seed ^ 0xC1u64,
        );

        let mut next_id = 1u64 << 40;
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                Op::Search(q) => {
                    let mut got = client.search(&q).await;
                    got.sort_unstable();
                    assert_eq!(
                        got,
                        model.search(&q),
                        "step {step}: window {q:?} diverged at {shards} shards"
                    );
                }
                Op::Insert(r) => {
                    let id = next_id;
                    next_id += 1;
                    assert!(client.insert(r, id).await, "step {step}: insert refused");
                    model.live.push((r, id));
                }
                Op::Delete(i) => {
                    if model.live.is_empty() {
                        continue;
                    }
                    let (r, id) = model.live.swap_remove(i % model.live.len());
                    assert!(
                        client.delete(r, id).await,
                        "step {step}: delete of live item {id} failed"
                    );
                }
                Op::Nearest(x, y, k) => {
                    let got = client.nearest(x, y, k).await;
                    assert_eq!(
                        got,
                        model.nearest(x, y, k),
                        "step {step}: {k}-NN at ({x}, {y}) diverged at {shards} shards"
                    );
                }
            }
        }

        // The partition must not lose or duplicate anything: a full-window
        // query returns exactly the model's live set.
        let world = Rect::new(0.0, 0.0, 1.0, 1.0);
        let mut got = client.search(&world).await;
        got.sort_unstable();
        assert_eq!(got, model.search(&world), "full-window sweep diverged");
    });
}

/// Boundary-window stress: every query and insert is pinned **exactly to
/// an x-cut** of the live partition — centers on the cut, windows whose
/// min/max edge equals the cut, and windows straddling it by a hair.
/// These are the rectangles where a routing off-by-one (open vs closed
/// slab intervals, `<` vs `<=` in the partition point) silently drops one
/// neighbor from the scatter set, which generic uniform rectangles almost
/// never catch.
fn check_cut_boundary_windows(shards: usize, dataset_seed: u64, picks: Vec<(u8, u8, f64, f64)>) {
    let sim = Sim::new();
    sim.run_until(async move {
        let net = Network::new();
        let profile = infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let dataset = uniform_rects(300, 1e-3, dataset_seed);
        let mut model = Model {
            live: dataset.clone(),
        };
        let cluster = CatfishCluster::build(
            &net,
            &profile,
            ServerConfig {
                cores: 2,
                mode: ServerMode::EventDriven,
                ..ServerConfig::default()
            },
            RTreeConfig::default(),
            dataset,
            shards,
            &rkeys,
        );
        let mut client = CatfishClusterClient::connect(
            &cluster,
            &net,
            &profile,
            ClientConfig {
                mode: AccessMode::FastMessaging,
                ..ClientConfig::default()
            },
            dataset_seed ^ 0xB0u64,
        );
        let ShardMap::Region { cuts, .. } = client.shard_map() else {
            panic!("r-tree cluster must use a region map");
        };
        let cuts = cuts.clone();
        assert!(!cuts.is_empty(), "need at least one cut at {shards} shards");

        let mut next_id = 1u64 << 41;
        for (step, (cut_pick, variant, y, w)) in picks.into_iter().enumerate() {
            let cut = cuts[cut_pick as usize % cuts.len()];
            let y = y.clamp(0.0, 0.99);
            let w = w.clamp(1e-4, 0.1);
            // Rectangles pinned to the cut: centered on it, ending exactly
            // on it, starting exactly on it, or straddling asymmetrically.
            let rect = match variant % 4 {
                0 => Rect::new(cut - w, y, cut + w, y + 0.05),
                1 => Rect::new((cut - w).max(0.0), y, cut, y + 0.05),
                2 => Rect::new(cut, y, (cut + w).min(1.0), y + 0.05),
                _ => Rect::new((cut - w / 3.0).max(0.0), y, (cut + w).min(1.0), y + 0.05),
            };
            if variant % 2 == 0 {
                // Exercise routing of an *insert* whose center can sit
                // exactly on the cut, then make sure reads find it back.
                let id = next_id;
                next_id += 1;
                assert!(client.insert(rect, id).await, "step {step}: insert refused");
                model.live.push((rect, id));
            }
            let mut got = client.search(&rect).await;
            got.sort_unstable();
            assert_eq!(
                got,
                model.search(&rect),
                "step {step}: cut-pinned window {rect:?} diverged at {shards} shards"
            );
        }

        let world = Rect::new(0.0, 0.0, 1.0, 1.0);
        let mut got = client.search(&world).await;
        got.sort_unstable();
        assert_eq!(got, model.search(&world), "full-window sweep diverged");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// The cluster is indistinguishable from the single-index reference
    /// under arbitrary op interleavings, for 2–4 shards.
    #[test]
    fn scatter_gather_matches_single_index_reference(
        shards in 2usize..5,
        dataset_seed in 0u64..1_000,
        ops in prop::collection::vec(arb_op(), 1..30),
    ) {
        check_cluster_matches_model(shards, dataset_seed, ops);
    }

    /// Degenerate but legal: a 1-shard cluster is exactly the single
    /// server, so the same law holds trivially — guarding the bench's
    /// "1-shard cell matches single-server numbers" claim structurally.
    #[test]
    fn one_shard_cluster_matches_reference(
        dataset_seed in 0u64..1_000,
        ops in prop::collection::vec(arb_op(), 1..20),
    ) {
        check_cluster_matches_model(1, dataset_seed, ops);
    }

    /// Windows and inserts pinned exactly onto the partition's x-cuts
    /// route to every neighbor the flat reference says they must — the
    /// off-by-one trap of slab routing.
    #[test]
    fn cut_boundary_windows_match_reference(
        shards in 2usize..5,
        dataset_seed in 0u64..1_000,
        picks in prop::collection::vec(
            (any::<u8>(), any::<u8>(), 0.0f64..1.0, 0.0f64..0.1),
            1..20,
        ),
    ) {
        check_cut_boundary_windows(shards, dataset_seed, picks);
    }
}
