//! The paper's §VI generality claim, end to end: **one** generic service
//! engine ([`ServiceServer`]`<B>` / [`ServiceClient`]`<B>`) drives the
//! same adaptive hybrid workload through two different index backends —
//! the R-tree spatial service and the B+-tree KV service — with the
//! fast/offload routing counters consistent with the configured
//! [`AccessMode`] in both cases.
//!
//! `drive_reads` below is a single generic function body; that it compiles
//! and passes against both backends is the point of the test.

use catfish_bplus::BpConfig;
use catfish_core::client::CatfishClient;
use catfish_core::config::{AccessMode, AdaptiveParams, ClientConfig, ServerConfig, ServerMode};
use catfish_core::conn::RkeyAllocator;
use catfish_core::kv::{KvClient, KvRead, KvServer};
use catfish_core::server::CatfishServer;
use catfish_core::service::{ClientBackend, ServiceClient};
use catfish_rdma::profile::infiniband_100g;
use catfish_rdma::{Endpoint, RdmaProfile};
use catfish_rtree::{RTreeConfig, Rect};
use catfish_simnet::{sleep, Network, Sim, SimDuration};
use catfish_workload::uniform_rects;
use proptest::prelude::*;

/// Issues every read through the generic read path and returns the total
/// item count. The same function body serves both backends.
async fn drive_reads<B: ClientBackend>(client: &mut ServiceClient<B>, reads: &[B::Read]) -> usize {
    let mut total = 0;
    for r in reads {
        total += client.read(r).await.len();
    }
    total
}

fn server_cfg() -> ServerConfig {
    ServerConfig {
        cores: 4,
        mode: ServerMode::EventDriven,
        ..ServerConfig::default()
    }
}

fn client_cfg(mode: AccessMode) -> ClientConfig {
    ClientConfig {
        mode,
        ..ClientConfig::default()
    }
}

fn rtree_pair(net: &Network, mode: AccessMode, seed: u64) -> (CatfishServer, CatfishClient) {
    let profile = infiniband_100g();
    let rkeys = RkeyAllocator::new();
    let server = CatfishServer::build(
        net,
        &profile,
        server_cfg(),
        RTreeConfig::default(),
        uniform_rects(2_000, 1e-4, 5),
        &rkeys,
    );
    let ep = Endpoint::new(net, net.add_node(profile.link), RdmaProfile::default());
    let ch = server.accept(&ep);
    let client = CatfishClient::new(ch, server.remote_handle(), client_cfg(mode), seed);
    (server, client)
}

fn kv_pair(net: &Network, mode: AccessMode, seed: u64) -> (KvServer, KvClient) {
    let profile = infiniband_100g();
    let rkeys = RkeyAllocator::new();
    let server = KvServer::build(
        net,
        &profile,
        server_cfg(),
        BpConfig::with_max_keys(32),
        (0..2_000u64).map(|i| (i * 3, i)).collect(),
        &rkeys,
    );
    let ep = Endpoint::new(net, net.add_node(profile.link), RdmaProfile::default());
    let ch = server.accept(&ep);
    let client = KvClient::new(ch, server.remote_handle(), client_cfg(mode), seed);
    (server, client)
}

fn query_rects(n: usize) -> Vec<Rect> {
    (0..n)
        .map(|i| {
            let x = (i as f64 * 0.137) % 0.9;
            let y = (i as f64 * 0.251) % 0.9;
            Rect::new(x, y, x + 0.05, y + 0.05)
        })
        .collect()
}

/// Fast messaging routes every read through the server; offloading routes
/// none; fetching routes every read through the server but pulls every
/// response out of the mailbox; adaptive picks per-request but accounts
/// for all of them — and the identical invariants hold for both backends.
#[test]
fn mode_counters_are_consistent_for_both_backends() {
    for mode in [
        AccessMode::FastMessaging,
        AccessMode::Offloading,
        AccessMode::Fetching,
        AccessMode::Adaptive(AdaptiveParams::default()),
    ] {
        let sim = Sim::new();
        sim.run_until(async move {
            let net = Network::new();

            let (r_server, mut r_client) = rtree_pair(&net, mode, 21);
            let rects = query_rects(40);
            drive_reads(&mut r_client, &rects).await;

            let (k_server, mut k_client) = kv_pair(&net, mode, 22);
            let gets: Vec<KvRead> = (0..40u64).map(|i| KvRead::Get(i * 151 % 6_000)).collect();
            drive_reads(&mut k_client, &gets).await;

            for (label, client_stats, server_stats) in [
                ("rtree", r_client.stats(), r_server.stats()),
                ("kv", k_client.stats(), k_server.stats()),
            ] {
                match mode {
                    AccessMode::FastMessaging => {
                        assert_eq!(client_stats.fast_reads, 40, "{label}");
                        assert_eq!(client_stats.offloaded_reads, 0, "{label}");
                        assert_eq!(server_stats.reads, 40, "{label}");
                    }
                    AccessMode::Offloading => {
                        assert_eq!(client_stats.offloaded_reads, 40, "{label}");
                        assert_eq!(client_stats.fast_reads, 0, "{label}");
                        assert_eq!(server_stats.reads, 0, "{label}");
                        assert!(client_stats.chunks_fetched > 0, "{label}");
                    }
                    AccessMode::Fetching => {
                        assert_eq!(client_stats.fetched_reads, 40, "{label}");
                        assert_eq!(client_stats.fast_reads, 0, "{label}");
                        assert_eq!(client_stats.offloaded_reads, 0, "{label}");
                        // The server executed every read and deposited
                        // every response — none overflowed into ring
                        // write-back at these result sizes.
                        assert_eq!(server_stats.reads, 40, "{label}");
                        assert_eq!(server_stats.fetched_responses, 40, "{label}");
                        assert_eq!(server_stats.fetch_fallbacks, 0, "{label}");
                    }
                    AccessMode::Adaptive(_) => {
                        assert_eq!(
                            client_stats.fast_reads
                                + client_stats.fetched_reads
                                + client_stats.offloaded_reads,
                            40,
                            "{label}"
                        );
                        assert_eq!(
                            server_stats.reads + client_stats.offloaded_reads,
                            40,
                            "{label}"
                        );
                    }
                }
            }
        });
    }
}

/// Doorbell batching produces exactly the sequential path's results for
/// both backends, under both server modes, with batching on (`max_batch`
/// 8) and off (`max_batch` 1) — and the batching counters observe it:
/// coalesced flushes appear in `batches_sent`/`msgs_per_batch` when
/// enabled and stay at zero when disabled.
#[test]
fn batched_reads_match_sequential_for_both_backends_and_modes() {
    for server_mode in [
        ServerMode::EventDriven,
        ServerMode::Polling,
        ServerMode::AdaptiveSpin,
    ] {
        for max_batch in [1usize, 8] {
            let sim = Sim::new();
            sim.run_until(async move {
                let net = Network::new();
                let profile = infiniband_100g();
                let scfg = ServerConfig {
                    cores: 4,
                    mode: server_mode,
                    max_batch,
                    ..ServerConfig::default()
                };
                let ccfg = ClientConfig {
                    mode: AccessMode::FastMessaging,
                    max_batch,
                    ..ClientConfig::default()
                };

                // --- R-tree backend ---
                let rkeys = RkeyAllocator::new();
                let server = CatfishServer::build(
                    &net,
                    &profile,
                    scfg,
                    RTreeConfig::default(),
                    uniform_rects(2_000, 1e-4, 5),
                    &rkeys,
                );
                let ep = Endpoint::new(&net, net.add_node(profile.link), RdmaProfile::default());
                let ch = server.accept(&ep);
                let mut client = CatfishClient::new(ch, server.remote_handle(), ccfg, 41);
                let rects = query_rects(24);
                let batched = client.read_batch(&rects).await;
                assert_eq!(batched.len(), rects.len());
                for (q, got) in rects.iter().zip(&batched) {
                    let mut got: Vec<u64> = got.iter().map(|&(_, d)| d).collect();
                    let mut expect = server.with_index(|t| t.search(q));
                    got.sort_unstable();
                    expect.sort_unstable();
                    assert_eq!(got, expect, "{server_mode:?} max_batch {max_batch} {q:?}");
                }
                let s = client.stats();
                assert_eq!(s.fast_reads, 24);
                assert_eq!(server.stats().reads, 24);
                if max_batch > 1 {
                    assert!(
                        s.batches_sent > 0,
                        "{server_mode:?}: batching should engage"
                    );
                    assert!(s.msgs_per_batch() > 1.0);
                } else {
                    assert_eq!(s.batches_sent, 0, "{server_mode:?}: batch 1 is sequential");
                }

                // --- KV backend, same shape ---
                let rkeys = RkeyAllocator::new();
                let server = KvServer::build(
                    &net,
                    &profile,
                    scfg,
                    BpConfig::with_max_keys(32),
                    (0..2_000u64).map(|i| (i * 3, i)).collect(),
                    &rkeys,
                );
                let ep = Endpoint::new(&net, net.add_node(profile.link), RdmaProfile::default());
                let ch = server.accept(&ep);
                let mut client = KvClient::new(ch, server.remote_handle(), ccfg, 42);
                let gets: Vec<KvRead> = (0..24u64).map(|i| KvRead::Get(i * 151 % 6_000)).collect();
                let batched = client.read_batch(&gets).await;
                for (read, got) in gets.iter().zip(&batched) {
                    let expect: Vec<(u64, u64)> = server.with_index(|t| match *read {
                        KvRead::Get(k) => t.get(k).map(|v| (k, v)).into_iter().collect(),
                        KvRead::Range { lo, hi } => t.range(lo, hi),
                    });
                    assert_eq!(
                        got, &expect,
                        "{server_mode:?} max_batch {max_batch} {read:?}"
                    );
                }
                let s = client.stats();
                assert_eq!(s.fast_reads, 24);
                if max_batch > 1 {
                    assert!(
                        s.batches_sent > 0,
                        "{server_mode:?}: kv batching should engage"
                    );
                } else {
                    assert_eq!(s.batches_sent, 0);
                }
            });
        }
    }
}

/// Replays one op sequence under one access mode and returns every read
/// result, encoded exactly as the items came off the wire (key/data pairs
/// serialized to little-endian bytes), so the cross-mode comparison is
/// byte-level rather than merely set-level.
async fn replay_rtree(net: &Network, mode: AccessMode, ops: &[(bool, u8)]) -> Vec<Vec<u8>> {
    let (_server, mut client) = rtree_pair(net, mode, 77);
    let mut out = Vec::new();
    for &(write, k) in ops {
        let d = 2_000_000 + u64::from(k);
        let x = (d as f64 * 0.0171) % 0.9;
        let r = Rect::new(x, x, x + 0.02, x + 0.02);
        if write {
            client.insert(r, d).await;
        } else {
            let mut bytes = Vec::new();
            for (rect, data) in client.read(&r).await {
                bytes.extend_from_slice(&rect.min_x().to_le_bytes());
                bytes.extend_from_slice(&rect.min_y().to_le_bytes());
                bytes.extend_from_slice(&rect.max_x().to_le_bytes());
                bytes.extend_from_slice(&rect.max_y().to_le_bytes());
                bytes.extend_from_slice(&data.to_le_bytes());
            }
            out.push(bytes);
        }
    }
    out
}

/// KV twin of [`replay_rtree`]: puts and gets/ranges from the same
/// `(write, key)` script.
async fn replay_kv(net: &Network, mode: AccessMode, ops: &[(bool, u8)]) -> Vec<Vec<u8>> {
    let (_server, mut client) = kv_pair(net, mode, 78);
    let mut out = Vec::new();
    for &(write, k) in ops {
        let key = u64::from(k) * 151 % 6_000;
        if write {
            client.put(key, key ^ 0xABCD).await;
        } else {
            let read = if k % 3 == 0 {
                KvRead::Range {
                    lo: key,
                    hi: key + 300,
                }
            } else {
                KvRead::Get(key)
            };
            let mut bytes = Vec::new();
            for (rk, rv) in client.read(&read).await {
                bytes.extend_from_slice(&rk.to_le_bytes());
                bytes.extend_from_slice(&rv.to_le_bytes());
            }
            out.push(bytes);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mailbox fetching is invisible to the application: under an
    /// arbitrary interleaving of writes and reads, every read returns
    /// results **byte-identical** to the ring write-back path — on both
    /// backends. (The ops replay in separate simulations, one per mode,
    /// so the comparison covers ordering, not just membership.)
    #[test]
    fn fetched_results_are_byte_identical_to_write_back(
        ops in prop::collection::vec((any::<bool>(), 0u8..120), 1..36),
    ) {
        for backend in ["rtree", "kv"] {
            let mut runs = Vec::new();
            for mode in [AccessMode::FastMessaging, AccessMode::Fetching] {
                let ops = ops.clone();
                let sim = Sim::new();
                runs.push(sim.run_until(async move {
                    let net = Network::new();
                    match backend {
                        "rtree" => replay_rtree(&net, mode, &ops).await,
                        _ => replay_kv(&net, mode, &ops).await,
                    }
                }));
            }
            prop_assert_eq!(&runs[0], &runs[1], "{} fetch diverged from write-back", backend);
        }
    }
}

/// The same adaptive hybrid workload — interleaved writes and reads —
/// produces results matching the server's ground truth on both backends,
/// and every write is accounted for in the unified stats.
#[test]
fn adaptive_hybrid_workload_is_correct_on_both_backends() {
    let sim = Sim::new();
    sim.run_until(async {
        let net = Network::new();
        let mode = AccessMode::Adaptive(AdaptiveParams::default());

        // --- R-tree backend ---
        let (server, mut client) = rtree_pair(&net, mode, 31);
        server.start_heartbeats();
        let mut writes = 0u64;
        for round in 0..5u64 {
            for i in 0..8u64 {
                let d = 1_000_000 + round * 8 + i;
                let x = (d as f64 * 0.0137) % 0.9;
                let r = Rect::new(x, x, x + 0.01, x + 0.01);
                assert!(client.insert(r, d).await);
                writes += 1;
            }
            // Let any cached offload metadata expire before reading.
            sleep(SimDuration::from_millis(20)).await;
            for q in query_rects(8) {
                let mut got: Vec<u64> = client.read(&q).await.iter().map(|&(_, d)| d).collect();
                let mut expect = server.with_index(|t| t.search(&q));
                got.sort_unstable();
                expect.sort_unstable();
                assert_eq!(got, expect, "round {round} rect {q:?}");
            }
        }
        let s = client.stats();
        assert_eq!(s.writes_sent, writes);
        assert_eq!(s.fast_reads + s.offloaded_reads, 40);
        assert_eq!(server.stats().writes, writes);

        // --- KV backend, same shape ---
        let (server, mut client) = kv_pair(&net, mode, 32);
        server.start_heartbeats();
        let mut writes = 0u64;
        for round in 0..5u64 {
            for i in 0..8u64 {
                let k = 1_000_000 + (round * 8 + i) * 17;
                client.put(k, k / 2).await;
                writes += 1;
            }
            sleep(SimDuration::from_millis(20)).await;
            for probe in 0..8u64 {
                let read = if probe % 2 == 0 {
                    KvRead::Get(probe * 307 % 6_000)
                } else {
                    KvRead::Range {
                        lo: probe * 500,
                        hi: probe * 500 + 200,
                    }
                };
                let got = client.read(&read).await;
                let expect = server.with_index(|t| match read {
                    KvRead::Get(k) => t.get(k).map(|v| (k, v)).into_iter().collect(),
                    KvRead::Range { lo, hi } => t.range(lo, hi),
                });
                assert_eq!(got, expect, "round {round} read {read:?}");
            }
        }
        let s = client.stats();
        assert_eq!(s.writes_sent, writes);
        assert_eq!(s.fast_reads + s.offloaded_reads, 40);
        assert_eq!(server.stats().writes, writes);
    });
}
