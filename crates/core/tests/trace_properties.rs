//! Properties of distributed request tracing: the [`TraceContext`]
//! envelope round-trips byte-identically through both wire codecs,
//! survives doorbell-batch coalescing and partial retransmission, and —
//! with the `trace` feature — whole-run span logs assemble into one
//! connected tree per request, in single-shard and sharded topologies,
//! clean and under chaos.

use catfish_core::config::Scheme;
use catfish_core::harness::{run_experiment, ExperimentSpec};
use catfish_core::kv::{KvMessage, KvWire};
use catfish_core::msg::{Message, RtreeWire};
use catfish_core::obs::{TraceContext, TRACE_FLAG_BATCHED, TRACE_FLAG_RETRANSMIT};
use catfish_core::WireCodec;
use catfish_rdma::{profile, FaultConfig};
use catfish_rtree::Rect;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};
use proptest::prelude::*;

fn arb_ctx() -> impl Strategy<Value = TraceContext> {
    (1u64..u64::MAX, 1u64..u64::MAX, 0u8..8u8).prop_map(|(trace_id, parent_span, flags)| {
        TraceContext {
            trace_id,
            parent_span,
            flags,
        }
    })
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.1, 0.0f64..0.1)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

/// Any single R-tree request (the only messages envelopes may wrap).
fn arb_rtree_req() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), arb_rect()).prop_map(|(seq, rect)| Message::SearchReq { seq, rect }),
        (any::<u32>(), arb_rect(), any::<u64>()).prop_map(|(seq, rect, data)| Message::InsertReq {
            seq,
            rect,
            data
        }),
        (any::<u32>(), arb_rect(), any::<u64>()).prop_map(|(seq, rect, data)| Message::DeleteReq {
            seq,
            rect,
            data
        }),
        (any::<u32>(), 0.0f64..1.0, 0.0f64..1.0, 1u32..64)
            .prop_map(|(seq, x, y, k)| Message::NearestReq { seq, x, y, k }),
    ]
}

/// Any single KV request.
fn arb_kv_req() -> impl Strategy<Value = KvMessage> {
    prop_oneof![
        (any::<u32>(), any::<u64>()).prop_map(|(seq, key)| KvMessage::GetReq { seq, key }),
        (any::<u32>(), any::<u64>(), any::<u64>())
            .prop_map(|(seq, key, value)| KvMessage::PutReq { seq, key, value }),
        (any::<u32>(), any::<u64>()).prop_map(|(seq, key)| KvMessage::RemoveReq { seq, key }),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(seq, lo, hi)| KvMessage::RangeReq {
            seq,
            lo: lo.min(hi),
            hi: lo.max(hi),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// An R-tree trace envelope round-trips through encode/decode with the
    /// context intact, and re-encoding the decoded message is
    /// byte-identical — the property that makes single-frame retransmits
    /// (which resend the original bytes) indistinguishable from fresh
    /// sends to the server-side dedup layer.
    #[test]
    fn rtree_envelope_roundtrips_byte_identically(
        ctx in arb_ctx(),
        inner in arb_rtree_req(),
    ) {
        let msg = RtreeWire::traced(ctx, inner.clone());
        let bytes = msg.encode();
        let decoded = Message::decode(&bytes).expect("traced frame decodes");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(decoded.encode(), bytes);
        let (got_ctx, got_inner) = RtreeWire::take_trace(decoded);
        prop_assert_eq!(got_ctx, Some(ctx));
        prop_assert_eq!(got_inner, inner);
    }

    /// The same round-trip for the KV codec.
    #[test]
    fn kv_envelope_roundtrips_byte_identically(
        ctx in arb_ctx(),
        inner in arb_kv_req(),
    ) {
        let msg = KvWire::traced(ctx, inner.clone());
        let bytes = msg.encode();
        let decoded = KvMessage::decode(&bytes).expect("traced frame decodes");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(decoded.encode(), bytes);
        let (got_ctx, got_inner) = KvWire::take_trace(decoded);
        prop_assert_eq!(got_ctx, Some(ctx));
        prop_assert_eq!(got_inner, inner);
    }

    /// Trace envelopes survive doorbell-batch coalescing: a batch of
    /// traced requests decodes back to every envelope with its context
    /// intact, and a partial retransmission of the unacked tail (rebuilt
    /// as a smaller batch with the retransmit flag) preserves each
    /// context's identity fields.
    #[test]
    fn envelopes_survive_batch_coalescing_and_partial_retransmit(
        reqs in prop::collection::vec((arb_ctx(), arb_rtree_req()), 1..16),
        split in any::<prop::sample::Index>(),
    ) {
        let traced: Vec<Message> = reqs
            .iter()
            .map(|(ctx, inner)| {
                RtreeWire::traced(ctx.with_flag(TRACE_FLAG_BATCHED), inner.clone())
            })
            .collect();
        let batch = Message::Batch(traced.clone());
        let decoded = Message::decode(&batch.encode()).expect("batch decodes");
        let Message::Batch(got) = decoded else {
            return Err(TestCaseError::fail("batch did not decode to a batch"));
        };
        prop_assert_eq!(&got, &traced);
        for (m, (ctx, inner)) in got.iter().zip(&reqs) {
            let (got_ctx, got_inner) = RtreeWire::take_trace(m.clone());
            prop_assert_eq!(got_ctx, Some(ctx.with_flag(TRACE_FLAG_BATCHED)));
            prop_assert_eq!(&got_inner, inner);
        }

        // Partial retransmit: the unacked tail is re-wrapped with the
        // retransmit flag and coalesced into a fresh, smaller batch.
        let start = split.index(reqs.len());
        let tail: Vec<Message> = reqs[start..]
            .iter()
            .map(|(ctx, inner)| {
                RtreeWire::traced(
                    ctx.with_flag(TRACE_FLAG_BATCHED).with_flag(TRACE_FLAG_RETRANSMIT),
                    inner.clone(),
                )
            })
            .collect();
        let redecoded =
            Message::decode(&Message::Batch(tail).encode()).expect("retransmit batch decodes");
        let Message::Batch(got_tail) = redecoded else {
            return Err(TestCaseError::fail("retransmit did not decode to a batch"));
        };
        prop_assert_eq!(got_tail.len(), reqs.len() - start);
        for (m, (ctx, inner)) in got_tail.into_iter().zip(&reqs[start..]) {
            let (got_ctx, got_inner) = RtreeWire::take_trace(m);
            let got_ctx = got_ctx.expect("context survives retransmit");
            prop_assert_eq!(got_ctx.trace_id, ctx.trace_id);
            prop_assert_eq!(got_ctx.parent_span, ctx.parent_span);
            prop_assert!(got_ctx.flags & TRACE_FLAG_RETRANSMIT != 0);
            prop_assert_eq!(&got_inner, inner);
        }
    }
}

/// A harness spec for the span-tree integration tests below.
fn traced_spec(clients: usize, shards: usize, fault: Option<FaultConfig>) -> ExperimentSpec {
    ExperimentSpec {
        profile: profile::infiniband_100g(),
        scheme: Scheme::Catfish,
        clients,
        client_nodes: 2,
        shards,
        dataset: uniform_rects(4_000, 1e-4, 7),
        trace: TraceSpec::search_only(ScaleDist::small(), 40),
        seed: 7,
        collect_spans: true,
        fault,
        ..ExperimentSpec::default()
    }
}

/// A chaos plan touching every fault class the protocol recovers from.
fn chaos() -> FaultConfig {
    FaultConfig {
        drop_write: 0.02,
        drop_completion: 0.01,
        corrupt: 0.01,
        duplicate: 0.01,
        delay: 0.02,
        suppress_heartbeat: 0.05,
        ..FaultConfig::off()
    }
}

#[cfg(feature = "trace")]
mod span_trees {
    use super::*;
    use catfish_core::obs::{SpanKind, TraceAssembler, SERVER_NODE_BASE};

    /// Asserts the run's spans assemble into exactly one connected tree
    /// per completed request, each rooted in a client-side `Request` span.
    fn assert_connected(spec: &ExperimentSpec) {
        let r = run_experiment(spec);
        assert!(!r.spans.is_empty(), "traced run recorded no spans");
        let asm = TraceAssembler::assemble(&r.spans);
        assert!(
            asm.all_connected(),
            "disconnected traces: {:?}",
            asm.disconnected()
        );
        assert_eq!(
            asm.len(),
            r.completed_requests,
            "one trace per completed request"
        );
        for t in &asm.traces {
            let root = &t.spans[t.roots[0]];
            assert_eq!(root.kind, SpanKind::Request);
            assert!(
                root.node < SERVER_NODE_BASE,
                "roots are client-side (node {})",
                root.node
            );
        }
        // Fast-messaging requests must carry server-side spans linked
        // through the wire context (offloaded ones legitimately have
        // none), and the workload never offloads everything.
        let server_spans = r
            .spans
            .iter()
            .filter(|s| s.node >= SERVER_NODE_BASE)
            .count();
        assert!(server_spans > 0, "no server-side spans were stitched in");
    }

    #[test]
    fn single_shard_traces_are_connected() {
        assert_connected(&traced_spec(8, 1, None));
    }

    #[test]
    fn single_shard_traces_survive_chaos() {
        assert_connected(&traced_spec(8, 1, Some(chaos())));
    }

    #[test]
    fn four_shard_scatter_gather_traces_are_connected() {
        // Wide window queries (1e-2 of the space) span the x-partition,
        // so requests genuinely scatter over multiple shards.
        let mut spec = traced_spec(8, 4, None);
        spec.trace = TraceSpec::search_only(ScaleDist::large(), 40);
        assert_connected(&spec);
        // Scatter-gather structure: some request fanned out over RPC legs
        // to multiple shards and merged.
        let r = run_experiment(&spec);
        let asm = TraceAssembler::assemble(&r.spans);
        let scattered = asm
            .traces
            .iter()
            .filter(|t| t.spans.iter().any(|s| s.kind == SpanKind::Rpc))
            .count();
        assert!(scattered > 0, "no request scattered across shards");
        let merged = asm
            .traces
            .iter()
            .filter(|t| t.spans.iter().any(|s| s.kind == SpanKind::Merge))
            .count();
        assert_eq!(scattered, merged, "every scatter has a merge leaf");
    }

    /// The ISSUE's acceptance scenario: a 4-shard scatter-gather window
    /// query workload under a chaos fault plan still reconstructs one
    /// connected trace tree per request.
    #[test]
    fn four_shard_traces_survive_chaos() {
        assert_connected(&traced_spec(8, 4, Some(chaos())));
    }
}

/// With the feature compiled out, the same traced specs must record
/// nothing — `collect_spans` is declared to be a no-op.
#[cfg(not(feature = "trace"))]
#[test]
fn collect_spans_is_inert_without_the_feature() {
    let r = run_experiment(&traced_spec(4, 2, Some(chaos())));
    assert!(r.spans.is_empty());
    assert!(r.completed_requests > 0);
}
