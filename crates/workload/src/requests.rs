//! Per-client request trace generation.

use catfish_rtree::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scale::ScaleDist;
use crate::zipf::SpatialHotspot;

/// One R-tree request issued by a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Return all rectangles intersecting this one.
    Search(Rect),
    /// Insert this rectangle with the given payload.
    Insert(Rect, u64),
    /// Delete a previously inserted rectangle (always one this client
    /// inserted earlier in its own trace, so deletes never race other
    /// clients' items).
    Delete(Rect, u64),
}

impl Request {
    /// True for search requests.
    pub fn is_search(&self) -> bool {
        matches!(self, Request::Search(_))
    }
}

/// Builder for per-client request traces.
///
/// # Examples
///
/// ```
/// use catfish_workload::{ScaleDist, TraceSpec};
///
/// let spec = TraceSpec::search_only(ScaleDist::small(), 1_000);
/// let trace = spec.client_trace(0, 42);
/// assert_eq!(trace.len(), 1_000);
/// assert!(trace.iter().all(|r| r.is_search()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Scale distribution for search (and insert) rectangle edges.
    pub scale: ScaleDist,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Fraction of insert requests (the paper uses 0.0 or 0.1).
    pub insert_fraction: f64,
    /// Fraction of delete requests (not evaluated in the paper; each
    /// delete targets an item this client inserted earlier, and is
    /// skipped — emitted as a search — while none is available).
    pub delete_fraction: f64,
    /// Optional spatial hotspot: when set, search-rectangle positions are
    /// drawn through it instead of uniformly, concentrating query load on
    /// a sub-region (and thus on one shard of a partitioned cluster).
    pub hotspot: Option<SpatialHotspot>,
}

impl TraceSpec {
    /// A 100 %-search workload (Figs. 10/11).
    pub fn search_only(scale: ScaleDist, requests_per_client: usize) -> Self {
        TraceSpec {
            scale,
            requests_per_client,
            insert_fraction: 0.0,
            delete_fraction: 0.0,
            hotspot: None,
        }
    }

    /// The paper's hybrid workload: 90 % search, 10 % insert (Figs. 12/13).
    pub fn hybrid(scale: ScaleDist, requests_per_client: usize) -> Self {
        TraceSpec {
            scale,
            requests_per_client,
            insert_fraction: 0.1,
            delete_fraction: 0.0,
            hotspot: None,
        }
    }

    /// A read/insert/delete mix (beyond the paper's evaluation).
    pub fn churn(
        scale: ScaleDist,
        requests_per_client: usize,
        insert_fraction: f64,
        delete_fraction: f64,
    ) -> Self {
        TraceSpec {
            scale,
            requests_per_client,
            insert_fraction,
            delete_fraction,
            hotspot: None,
        }
    }

    /// Returns a copy of this spec whose search positions are drawn
    /// through `hotspot` instead of uniformly.
    pub fn with_hotspot(mut self, hotspot: SpatialHotspot) -> Self {
        self.hotspot = Some(hotspot);
        self
    }

    /// Generates client `client_id`'s trace deterministically from `seed`.
    pub fn client_trace(&self, client_id: u64, seed: u64) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(seed ^ client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut live: Vec<(Rect, u64)> = Vec::new();
        (0..self.requests_per_client)
            .map(|i| {
                let roll: f64 = rng.gen();
                if roll < self.insert_fraction {
                    let rect = skewed_insert_rect(&mut rng, &self.scale);
                    // Payload ids unique per client.
                    let id = client_id << 32 | i as u64;
                    live.push((rect, id));
                    Request::Insert(rect, id)
                } else if roll < self.insert_fraction + self.delete_fraction && !live.is_empty() {
                    let pick = rng.gen_range(0..live.len());
                    let (rect, id) = live.swap_remove(pick);
                    Request::Delete(rect, id)
                } else {
                    Request::Search(match &self.hotspot {
                        Some(h) => hotspot_search_rect(&mut rng, &self.scale, h),
                        None => search_rect(&mut rng, &self.scale),
                    })
                }
            })
            .collect()
    }
}

/// A search rectangle: edges from the scale distribution, position uniform.
pub fn search_rect<R: Rng + ?Sized>(rng: &mut R, scale: &ScaleDist) -> Rect {
    let w = scale.sample_edge(rng);
    let h = scale.sample_edge(rng);
    let x = rng.gen::<f64>() * (1.0 - w).max(0.0);
    let y = rng.gen::<f64>() * (1.0 - h).max(0.0);
    Rect::new(x, y, x + w, y + h)
}

/// A search rectangle whose position is drawn through a
/// [`SpatialHotspot`] (edges still come from the scale distribution).
pub fn hotspot_search_rect<R: Rng + ?Sized>(
    rng: &mut R,
    scale: &ScaleDist,
    hotspot: &SpatialHotspot,
) -> Rect {
    let w = scale.sample_edge(rng);
    let h = scale.sample_edge(rng);
    let (x, y) = hotspot.place(rng, w, h);
    Rect::new(x, y, x + w, y + h)
}

/// A skewed insert rectangle per §V-B: coordinates drawn from a power law
/// on `(0.5, 1.0]` and mirrored uniformly into one of the four corners —
/// "the skewed insertion that mimics the geographical data updates more
/// often happening in city areas".
pub fn skewed_insert_rect<R: Rng + ?Sized>(rng: &mut R, scale: &ScaleDist) -> Rect {
    let coord_dist = ScaleDist::PowerLaw {
        min: 0.5,
        max: 1.0,
        exponent: 0.99,
    };
    let x = coord_dist.sample_edge(rng);
    let y = coord_dist.sample_edge(rng);
    let (x, y) = match rng.gen_range(0..4) {
        0 => (x, y),
        1 => (1.0 - x, y),
        2 => (x, 1.0 - y),
        _ => (1.0 - x, 1.0 - y),
    };
    let w = scale.sample_edge(rng).min(1.0);
    let h = scale.sample_edge(rng).min(1.0);
    let x0 = (x - w / 2.0).clamp(0.0, 1.0 - w);
    let y0 = (y - h / 2.0).clamp(0.0, 1.0 - h);
    Rect::new(x0, y0, x0 + w, y0 + h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_only_trace_has_no_inserts() {
        let spec = TraceSpec::search_only(ScaleDist::large(), 500);
        let trace = spec.client_trace(3, 1);
        assert_eq!(trace.len(), 500);
        assert!(trace.iter().all(Request::is_search));
    }

    #[test]
    fn hybrid_trace_has_about_ten_percent_inserts() {
        let spec = TraceSpec::hybrid(ScaleDist::small(), 10_000);
        let trace = spec.client_trace(0, 7);
        let inserts = trace.iter().filter(|r| !r.is_search()).count();
        let frac = inserts as f64 / trace.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "insert fraction {frac}");
    }

    #[test]
    fn traces_differ_across_clients_but_are_deterministic() {
        let spec = TraceSpec::search_only(ScaleDist::small(), 100);
        assert_eq!(spec.client_trace(1, 9), spec.client_trace(1, 9));
        assert_ne!(spec.client_trace(1, 9), spec.client_trace(2, 9));
    }

    #[test]
    fn insert_payloads_are_unique_across_clients() {
        let spec = TraceSpec::hybrid(ScaleDist::small(), 2_000);
        let mut ids = Vec::new();
        for c in 0..4u64 {
            for r in spec.client_trace(c, 5) {
                if let Request::Insert(_, id) = r {
                    ids.push(id);
                }
            }
        }
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn skewed_inserts_cluster_toward_center_lines() {
        // Coordinates are power-law on (0.5, 1.0] then mirrored, so the
        // distance of each coordinate from the 0.5 line is |t - 0.5| with
        // t ~ t^-0.99. Its mean is ≈ 0.221, vs 0.25 for a uniform draw.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            let r = skewed_insert_rect(&mut rng, &ScaleDist::small());
            let (cx, cy) = r.center();
            total += (cx - 0.5).abs() + (cy - 0.5).abs();
        }
        let mean = total / (2 * n) as f64;
        assert!(
            mean < 0.235,
            "mean distance from center lines {mean}, expected < 0.235 (uniform = 0.25)"
        );
    }

    #[test]
    fn hotspot_spec_concentrates_searches() {
        let hot = SpatialHotspot::new(Rect::new(0.0, 0.0, 0.25, 1.0), 0.9);
        let spec = TraceSpec::search_only(ScaleDist::small(), 5_000).with_hotspot(hot);
        let trace = spec.client_trace(0, 31);
        let inside = trace
            .iter()
            .filter(|r| match r {
                Request::Search(rect) => rect.min_x() < 0.25,
                _ => false,
            })
            .count();
        let frac = inside as f64 / trace.len() as f64;
        assert!(frac > 0.85, "only {frac} of searches start in the hot slab");
        // The same spec without the hotspot spreads them uniformly.
        let base = TraceSpec::search_only(ScaleDist::small(), 5_000);
        let uniform_inside = base
            .client_trace(0, 31)
            .iter()
            .filter(|r| match r {
                Request::Search(rect) => rect.min_x() < 0.25,
                _ => false,
            })
            .count();
        assert!(uniform_inside as f64 / 5_000.0 < 0.35);
    }

    #[test]
    fn search_rects_stay_in_unit_square() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..1000 {
            let r = search_rect(&mut rng, &ScaleDist::large());
            assert!(r.min_x() >= 0.0 && r.max_x() <= 1.0 + 1e-9);
            assert!(r.min_y() >= 0.0 && r.max_y() <= 1.0 + 1e-9);
        }
    }
}

#[cfg(test)]
mod delete_tests {
    use super::*;

    #[test]
    fn churn_traces_delete_only_own_prior_inserts() {
        let spec = TraceSpec::churn(ScaleDist::small(), 5_000, 0.2, 0.1);
        let trace = spec.client_trace(3, 9);
        let mut live = std::collections::HashSet::new();
        let mut deletes = 0;
        for (i, r) in trace.iter().enumerate() {
            match r {
                Request::Insert(_, id) => {
                    assert!(live.insert(*id), "duplicate insert at {i}");
                }
                Request::Delete(_, id) => {
                    assert!(live.remove(id), "delete of non-live item at {i}");
                    deletes += 1;
                }
                Request::Search(_) => {}
            }
        }
        assert!(deletes > 300, "only {deletes} deletes generated");
    }

    #[test]
    fn hybrid_has_no_deletes() {
        let spec = TraceSpec::hybrid(ScaleDist::small(), 1_000);
        assert!(spec
            .client_trace(0, 1)
            .iter()
            .all(|r| !matches!(r, Request::Delete(..))));
    }
}
