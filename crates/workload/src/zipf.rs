//! Zipfian key sampling (YCSB-style), for the key-value generality
//! experiments: skewed key popularity is the KV analogue of the paper's
//! skewed spatial scales.

use rand::Rng;

/// A Zipfian distribution over `0..n` with exponent `theta`
/// (YCSB uses 0.99). Implementation follows Gray et al.'s rejection-free
/// inverse method as popularized by YCSB's `ZipfianGenerator`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1); YCSB uses 0.99"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        ZipfSampler {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            zeta2,
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The `zeta(2, theta)` constant (diagnostics).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for small n; sampled harmonic approximation for large n (the
    // YCSB generator precomputes this once, so precision, not speed,
    // matters — but 2M-term sums per experiment cell add up).
    if n <= 100_000 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=100_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        // Integral approximation of the tail.
        let a = 100_000f64;
        let b = n as f64;
        head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = ZipfSampler::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = ZipfSampler::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let top_ten = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        // Under uniform sampling the top 10 ranks would get 0.1 % of
        // draws; zipf(0.99) concentrates tens of percent there.
        assert!(
            top_ten as f64 / n as f64 > 0.2,
            "only {top_ten}/{n} draws in the top 10 ranks"
        );
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = ZipfSampler::new(100, 0.9);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max);
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let z = ZipfSampler::new(500, 0.99);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn large_domain_constructs_quickly_and_samples() {
        let z = ZipfSampler::new(10_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_rejected() {
        let _ = ZipfSampler::new(10, 1.5);
    }
}
