//! Zipfian key sampling (YCSB-style), for the key-value generality
//! experiments: skewed key popularity is the KV analogue of the paper's
//! skewed spatial scales — plus [`SpatialHotspot`], the spatial analogue
//! used to drive skewed load onto one shard of a partitioned cluster.

use catfish_rtree::Rect;
use rand::Rng;

/// A Zipfian distribution over `0..n` with exponent `theta`
/// (YCSB uses 0.99). Implementation follows Gray et al.'s rejection-free
/// inverse method as popularized by YCSB's `ZipfianGenerator`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1); YCSB uses 0.99"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        ZipfSampler {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            zeta2,
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The `zeta(2, theta)` constant (diagnostics).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// A spatial query hotspot: a sub-region of the unit square that attracts
/// a fixed fraction of all query positions, with the remainder placed
/// uniformly. This is the spatial analogue of Zipfian key popularity, and
/// is what makes one shard of a space-partitioned cluster "hot" while its
/// siblings stay cold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialHotspot {
    /// The hot sub-region (in unit-square coordinates).
    pub region: Rect,
    /// Fraction of query positions drawn from inside `region`.
    pub hot_fraction: f64,
}

impl SpatialHotspot {
    /// Creates a hotspot that attracts `hot_fraction` of query positions.
    ///
    /// # Panics
    ///
    /// Panics if `hot_fraction` is not in `[0, 1]`.
    pub fn new(region: Rect, hot_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot_fraction must be in [0, 1], got {hot_fraction}"
        );
        SpatialHotspot {
            region,
            hot_fraction,
        }
    }

    /// Derives the hot fraction from a two-bucket Zipf split: the hot
    /// region plays rank 0 of a Zipf(theta) domain of size 2, so its
    /// share of draws is `1 / zeta(2, theta)` (≈ 0.67 at YCSB's 0.99).
    pub fn from_zipf(region: Rect, theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1); YCSB uses 0.99"
        );
        SpatialHotspot::new(region, 1.0 / zeta(2, theta))
    }

    /// Places the lower-left corner of a `w`×`h` query rectangle: inside
    /// the hot region with probability `hot_fraction`, else uniformly in
    /// the unit square. The rectangle is kept inside the unit square even
    /// when it is larger than the hot region.
    pub fn place<R: Rng + ?Sized>(&self, rng: &mut R, w: f64, h: f64) -> (f64, f64) {
        let (lo_x, span_x, lo_y, span_y) = if rng.gen::<f64>() < self.hot_fraction {
            let span_x = (self.region.max_x() - self.region.min_x() - w).max(0.0);
            let span_y = (self.region.max_y() - self.region.min_y() - h).max(0.0);
            (
                self.region.min_x().min(1.0 - w),
                span_x,
                self.region.min_y().min(1.0 - h),
                span_y,
            )
        } else {
            (0.0, (1.0 - w).max(0.0), 0.0, (1.0 - h).max(0.0))
        };
        (
            (lo_x + rng.gen::<f64>() * span_x).max(0.0),
            (lo_y + rng.gen::<f64>() * span_y).max(0.0),
        )
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for small n; sampled harmonic approximation for large n (the
    // YCSB generator precomputes this once, so precision, not speed,
    // matters — but 2M-term sums per experiment cell add up).
    if n <= 100_000 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=100_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        // Integral approximation of the tail.
        let a = 100_000f64;
        let b = n as f64;
        head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = ZipfSampler::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = ZipfSampler::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let top_ten = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        // Under uniform sampling the top 10 ranks would get 0.1 % of
        // draws; zipf(0.99) concentrates tens of percent there.
        assert!(
            top_ten as f64 / n as f64 > 0.2,
            "only {top_ten}/{n} draws in the top 10 ranks"
        );
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = ZipfSampler::new(100, 0.9);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max);
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let z = ZipfSampler::new(500, 0.99);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn large_domain_constructs_quickly_and_samples() {
        let z = ZipfSampler::new(10_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_rejected() {
        let _ = ZipfSampler::new(10, 1.5);
    }

    #[test]
    fn hotspot_concentrates_positions_in_region() {
        let hot = SpatialHotspot::new(Rect::new(0.0, 0.0, 0.25, 1.0), 0.8);
        let mut rng = StdRng::seed_from_u64(21);
        let n = 20_000;
        let mut inside = 0;
        for _ in 0..n {
            let (x, _) = hot.place(&mut rng, 0.01, 0.01);
            if x < 0.25 {
                inside += 1;
            }
        }
        // 80 % land in the hot region directly, plus 25 % of the uniform
        // remainder: expect ≈ 85 %.
        let frac = inside as f64 / n as f64;
        assert!(frac > 0.8, "only {frac} of positions in the hot region");
    }

    #[test]
    fn hotspot_keeps_rects_in_unit_square() {
        let hot = SpatialHotspot::new(Rect::new(0.9, 0.9, 1.0, 1.0), 1.0);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..1000 {
            // Query larger than the hot region itself.
            let (x, y) = hot.place(&mut rng, 0.3, 0.3);
            assert!(x >= 0.0 && x + 0.3 <= 1.0 + 1e-9, "x {x}");
            assert!(y >= 0.0 && y + 0.3 <= 1.0 + 1e-9, "y {y}");
        }
    }

    #[test]
    fn from_zipf_matches_two_bucket_split() {
        let hot = SpatialHotspot::from_zipf(Rect::new(0.0, 0.0, 0.5, 0.5), 0.99);
        let expected = 1.0 / (1.0 + 0.5f64.powf(0.99));
        assert!((hot.hot_fraction - expected).abs() < 1e-12);
        assert!(hot.hot_fraction > 0.6 && hot.hot_fraction < 0.7);
    }

    #[test]
    #[should_panic(expected = "hot_fraction")]
    fn bad_hot_fraction_rejected() {
        let _ = SpatialHotspot::new(Rect::new(0.0, 0.0, 1.0, 1.0), 1.5);
    }
}
