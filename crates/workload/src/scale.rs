//! Request-scale distributions (paper §V-B).
//!
//! A "scale" bounds the edge lengths of requested rectangles. The paper
//! evaluates a fixed bound of `1e-5` (CPU-intensive: tiny result sets), a
//! fixed bound of `1e-2` (bandwidth-intensive: huge result sets), and a
//! truncated power law `f(t) ∝ t^-0.99` over `(1e-5, 1e-2]` (skewed toward
//! small scopes, as real map workloads are).

use rand::Rng;

/// How request-rectangle edge lengths are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleDist {
    /// Edges uniform in `(0, bound]`.
    Fixed {
        /// Upper bound on edge length.
        bound: f64,
    },
    /// Edges from a truncated power law `f(t) ∝ t^-exponent` on
    /// `(min, max]`.
    PowerLaw {
        /// Lower truncation (exclusive).
        min: f64,
        /// Upper truncation (inclusive).
        max: f64,
        /// The (positive) exponent; the paper uses `0.99`.
        exponent: f64,
    },
}

impl ScaleDist {
    /// The paper's CPU-bound scale: edges in `(0, 1e-5]`.
    pub fn small() -> Self {
        ScaleDist::Fixed { bound: 1e-5 }
    }

    /// The paper's bandwidth-bound scale: edges in `(0, 1e-2]`.
    pub fn large() -> Self {
        ScaleDist::Fixed { bound: 1e-2 }
    }

    /// The paper's skewed scale: `f(t) ∝ t^-0.99`, `t ∈ (1e-5, 1e-2]`.
    pub fn power_law() -> Self {
        ScaleDist::PowerLaw {
            min: 1e-5,
            max: 1e-2,
            exponent: 0.99,
        }
    }

    /// A short label for benchmark tables.
    pub fn label(&self) -> String {
        match self {
            ScaleDist::Fixed { bound } => format!("{bound}"),
            ScaleDist::PowerLaw { .. } => "power law".to_string(),
        }
    }

    /// Draws one edge length.
    ///
    /// # Panics
    ///
    /// Panics if the distribution parameters are non-positive or inverted.
    pub fn sample_edge<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ScaleDist::Fixed { bound } => {
                assert!(bound > 0.0, "scale bound must be positive");
                // Uniform over (0, bound]: flip the half-open side.
                bound * (1.0 - rng.gen::<f64>())
            }
            ScaleDist::PowerLaw { min, max, exponent } => {
                assert!(min > 0.0 && max > min, "power law needs 0 < min < max");
                sample_truncated_power_law(rng, min, max, exponent)
            }
        }
    }
}

/// Inverse-CDF sampling of `f(t) ∝ t^-s` truncated to `(a, b]`.
fn sample_truncated_power_law<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64, s: f64) -> f64 {
    let u: f64 = rng.gen();
    if (s - 1.0).abs() < 1e-9 {
        // f ∝ 1/t: F^-1(u) = a * (b/a)^u
        a * (b / a).powf(u)
    } else {
        let e = 1.0 - s;
        (a.powf(e) + u * (b.powf(e) - a.powf(e))).powf(1.0 / e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_samples_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = ScaleDist::Fixed { bound: 0.01 };
        for _ in 0..1000 {
            let e = d.sample_edge(&mut rng);
            assert!(e > 0.0 && e <= 0.01);
        }
    }

    #[test]
    fn power_law_samples_within_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = ScaleDist::power_law();
        for _ in 0..1000 {
            let e = d.sample_edge(&mut rng);
            assert!(e > 1e-5 && e <= 1e-2, "{e}");
        }
    }

    #[test]
    fn power_law_is_skewed_toward_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = ScaleDist::power_law();
        let n = 20_000;
        // With exponent 0.99 over 3 decades, each decade gets a roughly
        // comparable share, but the small decade must dominate a uniform
        // draw massively (uniform would put ~0.1% below 1e-4).
        let small = (0..n).filter(|_| d.sample_edge(&mut rng) < 1e-4).count();
        assert!(
            small as f64 / n as f64 > 0.2,
            "only {small}/{n} samples below 1e-4"
        );
    }

    #[test]
    fn exponent_one_branch_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = ScaleDist::PowerLaw {
            min: 0.1,
            max: 10.0,
            exponent: 1.0,
        };
        for _ in 0..100 {
            let e = d.sample_edge(&mut rng);
            assert!((0.1..=10.0).contains(&e));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = ScaleDist::power_law();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(d.sample_edge(&mut a), d.sample_edge(&mut b));
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ScaleDist::small().label(), "0.00001");
        assert_eq!(ScaleDist::large().label(), "0.01");
        assert_eq!(ScaleDist::power_law().label(), "power law");
    }
}
