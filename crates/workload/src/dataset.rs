//! Dataset generators: the uniform 2-million-rectangle tree of §V-B and a
//! synthetic reproduction of the `rea02` real-world dataset of §V-C.

use catfish_rtree::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` rectangles with edges uniform in `(0, edge_max]` and
/// positions uniform in the unit square (rectangles clamped inside it),
/// matching the paper's pre-built R-tree ("2 million 2D rectangles, whose
/// edges scale in the range (0, 0.0001] randomly").
pub fn uniform_rects(n: usize, edge_max: f64, seed: u64) -> Vec<(Rect, u64)> {
    assert!(
        edge_max > 0.0 && edge_max <= 1.0,
        "edge_max must be in (0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let w = edge_max * (1.0 - rng.gen::<f64>());
            let h = edge_max * (1.0 - rng.gen::<f64>());
            let x = rng.gen::<f64>() * (1.0 - w);
            let y = rng.gen::<f64>() * (1.0 - h);
            (Rect::new(x, y, x + w, y + h), i as u64)
        })
        .collect()
}

/// Full size of the `rea02` dataset (California street segments).
pub const REA02_FULL_SIZE: usize = 1_888_012;

/// Objects per sub-region in `rea02` ("grouped as sub-regions which have
/// roughly 20,000 objects").
const REA02_SUBREGION: usize = 20_000;

/// A synthetic reproduction of the `rea02` benchmark dataset.
///
/// The real file (Beckmann & Seeger's index benchmark) is not
/// redistributable here; this generator reproduces its documented
/// structure: ~1.89 M small elongated rectangles (street segments) covering
/// a region, grouped into sub-regions of ~20 k objects. **Insertion
/// order** matches the paper's description: sub-regions in random order;
/// within a sub-region, rectangles in row order west→east, rows
/// north→south — the clustered insertion pattern that stresses the R-tree
/// differently from uniform loads.
///
/// `size` scales the dataset (use [`REA02_FULL_SIZE`] for the paper's).
pub fn rea02_dataset(size: usize, seed: u64) -> Vec<(Rect, u64)> {
    assert!(size > 0, "dataset must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let regions = size.div_ceil(REA02_SUBREGION).max(1);
    // Lay sub-regions out on a grid covering the unit square.
    let grid = (regions as f64).sqrt().ceil() as usize;
    let cell = 1.0 / grid as f64;

    // Random sub-region visit order.
    let mut order: Vec<usize> = (0..regions).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }

    let mut out = Vec::with_capacity(size);
    let mut id = 0u64;
    'outer: for region in order {
        let rx = (region % grid) as f64 * cell;
        let ry = (region / grid) as f64 * cell;
        let per_region = REA02_SUBREGION.min(size - out.len());
        // Rows north→south within the cell, segments west→east in a row.
        let rows = (per_region as f64).sqrt().ceil() as usize;
        let per_row = per_region.div_ceil(rows);
        let row_h = cell / rows as f64;
        for row in 0..rows {
            // North (high y) first.
            let y = ry + cell - (row + 1) as f64 * row_h;
            for col in 0..per_row {
                if out.len() >= size {
                    break 'outer;
                }
                let seg_w = cell / per_row as f64;
                let x = rx + col as f64 * seg_w;
                // Street segments: thin, elongated, slightly jittered.
                let jx = rng.gen::<f64>() * seg_w * 0.2;
                let jy = rng.gen::<f64>() * row_h * 0.2;
                let w = seg_w * (0.6 + rng.gen::<f64>() * 0.4);
                let h = (row_h * 0.05).max(1e-7);
                let x0 = (x + jx).min(1.0 - w);
                let y0 = (y + jy).min(1.0 - h);
                out.push((Rect::new(x0, y0, x0 + w, y0 + h), id));
                id += 1;
            }
            if out.len() >= size {
                break 'outer;
            }
        }
    }
    out
}

/// Queries for the `rea02` experiment: each returns between `lo` and `hi`
/// results (the paper: "on average 100 rectangles will be returned, and the
/// actual number for a request randomly distributes from 50 to 150").
///
/// Query side lengths are derived from the dataset's density so the
/// expected intersection count matches a target drawn uniformly from
/// `[lo, hi]`.
pub fn rea02_queries(
    dataset: &[(Rect, u64)],
    count: usize,
    lo: usize,
    hi: usize,
    seed: u64,
) -> Vec<Rect> {
    assert!(lo >= 1 && hi >= lo, "need 1 <= lo <= hi");
    assert!(!dataset.is_empty(), "dataset must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = dataset.len() as f64;
    let avg_w: f64 = dataset.iter().map(|(r, _)| r.width()).sum::<f64>() / n;
    let avg_h: f64 = dataset.iter().map(|(r, _)| r.height()).sum::<f64>() / n;
    (0..count)
        .map(|_| {
            let target = rng.gen_range(lo..=hi) as f64;
            // E[hits] ≈ n * (s + avg_w) * (s + avg_h) for a square query of
            // side s under uniform density; solve for s.
            let mut s = (target / n).sqrt();
            for _ in 0..8 {
                let est = n * (s + avg_w) * (s + avg_h);
                s *= (target / est).sqrt();
            }
            let s = s.clamp(1e-6, 0.5);
            let x = rng.gen::<f64>() * (1.0 - s);
            let y = rng.gen::<f64>() * (1.0 - s);
            Rect::new(x, y, x + s, y + s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use catfish_rtree::{bulk_load, MemStore, RTreeConfig};

    #[test]
    fn uniform_rects_fit_unit_square() {
        let data = uniform_rects(1000, 1e-4, 42);
        assert_eq!(data.len(), 1000);
        for (r, _) in &data {
            assert!(r.min_x() >= 0.0 && r.max_x() <= 1.0);
            assert!(r.min_y() >= 0.0 && r.max_y() <= 1.0);
            assert!(r.width() <= 1e-4 && r.height() <= 1e-4);
        }
    }

    #[test]
    fn uniform_rects_deterministic() {
        assert_eq!(uniform_rects(100, 1e-4, 7), uniform_rects(100, 1e-4, 7));
        assert_ne!(uniform_rects(100, 1e-4, 7), uniform_rects(100, 1e-4, 8));
    }

    #[test]
    fn rea02_has_requested_size_and_unique_ids() {
        let data = rea02_dataset(50_000, 1);
        assert_eq!(data.len(), 50_000);
        let mut ids: Vec<u64> = data.iter().map(|(_, d)| *d).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50_000);
    }

    #[test]
    fn rea02_rects_are_valid_and_inside() {
        let data = rea02_dataset(30_000, 2);
        for (r, _) in &data {
            assert!(r.min_x() >= 0.0 && r.max_x() <= 1.0 + 1e-9);
            assert!(r.min_y() >= 0.0 && r.max_y() <= 1.0 + 1e-9);
            assert!(r.width() > 0.0);
        }
    }

    #[test]
    fn rea02_insertion_is_clustered() {
        // Consecutive insertions within a sub-region should be spatially
        // close: measure the mean center distance of consecutive pairs and
        // require it far below the uniform expectation (~0.52).
        let data = rea02_dataset(40_000, 3);
        let mut total = 0.0;
        for w in data.windows(2) {
            total += w[0].0.center_distance_sq(&w[1].0).sqrt();
        }
        let mean = total / (data.len() - 1) as f64;
        assert!(mean < 0.1, "mean consecutive distance {mean}");
    }

    #[test]
    fn rea02_queries_hit_target_cardinality() {
        let data = rea02_dataset(100_000, 4);
        let tree = bulk_load(MemStore::new(), RTreeConfig::default(), data.clone());
        let queries = rea02_queries(&data, 50, 50, 150, 5);
        let mut total = 0usize;
        for q in &queries {
            total += tree.search(q).len();
        }
        let avg = total as f64 / queries.len() as f64;
        // Generous band: density is not perfectly uniform.
        assert!(
            avg > 30.0 && avg < 300.0,
            "average result cardinality {avg}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rea02_rejected() {
        let _ = rea02_dataset(0, 1);
    }
}
