//! # catfish-workload — evaluation workload and dataset generators
//!
//! Deterministic (seeded) generators for everything the Catfish evaluation
//! feeds its system:
//!
//! * [`uniform_rects`] — the pre-built 2-million-rectangle tree of §V-B;
//! * [`ScaleDist`] — request scales: fixed `1e-5` (CPU-bound), fixed
//!   `1e-2` (bandwidth-bound), and the truncated power law;
//! * [`TraceSpec`] — per-client request traces: 100 % search or the 90/10
//!   search/insert hybrid with corner-skewed insert positions;
//! * [`rea02_dataset`] / [`rea02_queries`] — a synthetic reproduction of
//!   the `rea02` California street-segment benchmark (the original file is
//!   not redistributable; the generator reproduces its documented
//!   clustered structure and 50–150-result query cardinality).
//!
//! # Examples
//!
//! ```
//! use catfish_workload::{ScaleDist, TraceSpec};
//!
//! let spec = TraceSpec::hybrid(ScaleDist::power_law(), 100);
//! let trace = spec.client_trace(7, 12345);
//! assert_eq!(trace.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dataset;
mod requests;
mod scale;
mod zipf;

pub use dataset::{rea02_dataset, rea02_queries, uniform_rects, REA02_FULL_SIZE};
pub use requests::{hotspot_search_rect, search_rect, skewed_insert_rect, Request, TraceSpec};
pub use scale::ScaleDist;
pub use zipf::{SpatialHotspot, ZipfSampler};
