//! Ablation: structural design choices — node chunk size (fanout), ring
//! buffer capacity, and the multi-issue window's interaction with chunk
//! size. Chunk size trades per-read payload against traversal depth for
//! offloading clients; ring capacity bounds fast-messaging pipelining.

use catfish_bench::{banner, timed, BenchArgs};
use catfish_core::config::{AccessMode, ClientConfig, Scheme, ServerConfig};
use catfish_core::harness::{run_experiment, ExperimentSpec};
use catfish_rdma::profile;
use catfish_rtree::codec::ChunkLayout;
use catfish_rtree::RTreeConfig;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Ablation",
        "chunk size (fanout), ring capacity — 64 clients, CPU-bound scale",
    );
    let dataset = uniform_rects(args.size, 1e-4, args.seed);

    println!("\n-- node fanout / chunk size (offloading path, 64 clients) --");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "fanout", "chunk", "height", "offload Kops", "offload mean"
    );
    for m in [16usize, 32, 88, 176] {
        let layout = ChunkLayout::for_max_entries(m);
        let mut spec = ExperimentSpec {
            profile: profile::infiniband_100g(),
            scheme: Scheme::RdmaOffloading,
            client_config: Some(ClientConfig {
                mode: AccessMode::Offloading,
                multi_issue: true,
                ..ClientConfig::default()
            }),
            clients: 64,
            client_nodes: 8,
            dataset: dataset.clone(),
            trace: TraceSpec::search_only(ScaleDist::small(), args.requests),
            tree_config: RTreeConfig::with_max_entries(m),
            seed: args.seed,
            ..ExperimentSpec::default()
        };
        args.apply_faults(&mut spec);
        let r = timed(&format!("fanout {m}"), || run_experiment(&spec));
        // Height from a local rebuild (cheap relative to the run).
        let height = catfish_rtree::bulk_load(
            catfish_rtree::MemStore::new(),
            RTreeConfig::with_max_entries(m),
            dataset.clone(),
        )
        .height();
        println!(
            "{:>8} {:>11}B {:>12} {:>14.1} {:>14}",
            m,
            layout.chunk_bytes(),
            height,
            r.throughput_kops,
            r.latency.mean.to_string()
        );
    }

    println!("\n-- client-side level cache (offloading, 64 clients) --");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "levels", "offload Kops", "offload mean", "cache hits"
    );
    for cache_levels in [0u32, 1, 2, 3] {
        let mut spec = ExperimentSpec {
            profile: profile::infiniband_100g(),
            scheme: Scheme::RdmaOffloading,
            client_config: Some(ClientConfig {
                mode: AccessMode::Offloading,
                multi_issue: true,
                cache_levels,
                ..ClientConfig::default()
            }),
            clients: 64,
            client_nodes: 8,
            dataset: dataset.clone(),
            trace: TraceSpec::search_only(ScaleDist::small(), args.requests),
            tree_config: RTreeConfig::with_max_entries(88),
            seed: args.seed,
            ..ExperimentSpec::default()
        };
        args.apply_faults(&mut spec);
        let r = timed(&format!("cache {cache_levels}"), || run_experiment(&spec));
        println!(
            "{:>8} {:>14.1} {:>14} {:>12}",
            cache_levels,
            r.throughput_kops,
            r.latency.mean.to_string(),
            r.stats.cache_hits,
        );
    }

    println!("\n-- ring buffer capacity (fast messaging, 64 clients) --");
    println!("{:>12} {:>14} {:>14}", "ring", "FM Kops", "FM mean");
    for kb in [16usize, 64, 256, 1024] {
        let mut spec = ExperimentSpec {
            profile: profile::infiniband_100g(),
            scheme: Scheme::FastMessaging,
            server_mode: Some(catfish_core::config::ServerMode::EventDriven),
            clients: 64,
            client_nodes: 8,
            dataset: dataset.clone(),
            trace: TraceSpec::search_only(ScaleDist::large(), args.requests),
            tree_config: RTreeConfig::with_max_entries(88),
            server: ServerConfig {
                ring_capacity: kb * 1024,
                ..ServerConfig::default()
            },
            seed: args.seed,
            ..ExperimentSpec::default()
        };
        args.apply_faults(&mut spec);
        let r = timed(&format!("ring {kb}KB"), || run_experiment(&spec));
        println!(
            "{:>10}KB {:>14.1} {:>14}",
            kb,
            r.throughput_kops,
            r.latency.mean.to_string()
        );
    }
}
