//! Offline trace inspector: reads a `.spans.jsonl` export (written by any
//! binary run with `--trace-out`, or by tests via
//! [`SpanLog::to_jsonl`](catfish_core::SpanLog)), reassembles the
//! per-request trees, and reports their structure — span/trace counts,
//! connectivity, per-kind span totals, end-to-end duration percentiles,
//! and the slowest traces with their node fan-out. The parser is
//! hand-rolled key scanning over the fixed JSONL schema (no JSON
//! dependency), the mirror image of [`SpanRecord::to_json`].
//!
//! Usage:
//!
//! ```text
//! trace_tool FILE.spans.jsonl [--chrome OUT.json] [--check]
//! ```
//!
//! `--chrome` re-exports the assembly in Chrome `trace_event` format
//! (`chrome://tracing`, Perfetto). `--check` exits nonzero when any trace
//! fails connectedness — the CI smoke mode.

use catfish_core::obs::{LatencyHistogram, SpanKind, SpanRecord, TraceAssembler, SERVER_NODE_BASE};
use catfish_simnet::SimDuration;

/// Extracts the integer value of `"key":N` from one JSONL line.
fn num_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string value of `"key":"s"` from one JSONL line.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    rest.split('"').next()
}

/// Parses one `SpanRecord::to_json` line; `None` on any malformed field.
fn parse_span(line: &str) -> Option<SpanRecord> {
    Some(SpanRecord {
        trace_id: num_field(line, "trace_id")?,
        span_id: num_field(line, "span_id")?,
        parent_span: num_field(line, "parent")?,
        kind: SpanKind::from_name(str_field(line, "kind")?)?,
        node: num_field(line, "node")? as u32,
        start_ns: num_field(line, "start_ns")?,
        end_ns: num_field(line, "end_ns")?,
    })
}

fn main() {
    let mut file = None;
    let mut chrome_out = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome" => chrome_out = Some(args.next().expect("--chrome needs a path")),
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("usage: trace_tool FILE.spans.jsonl [--chrome OUT.json] [--check]");
                std::process::exit(0);
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => panic!("unexpected argument {other}; try --help"),
        }
    }
    let file = file.expect("usage: trace_tool FILE.spans.jsonl [--chrome OUT.json] [--check]");
    let text = std::fs::read_to_string(&file)
        .unwrap_or_else(|e| panic!("trace_tool: cannot read {file}: {e}"));

    let mut spans = Vec::new();
    let mut malformed = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match parse_span(line) {
            Some(s) => spans.push(s),
            None => malformed += 1,
        }
    }
    if malformed > 0 {
        eprintln!("warning: {malformed} malformed line(s) skipped");
    }

    let asm = TraceAssembler::assemble(&spans);
    println!("{file}: {} spans in {} traces", asm.span_count(), asm.len());

    // Per-kind span totals.
    let kinds = [
        SpanKind::Request,
        SpanKind::Rpc,
        SpanKind::Dispatch,
        SpanKind::IndexExec,
        SpanKind::Merge,
        SpanKind::Offload,
    ];
    let mut counts = [0usize; 6];
    for s in &spans {
        counts[kinds.iter().position(|k| *k == s.kind).unwrap()] += 1;
    }
    print!("kinds:");
    for (k, n) in kinds.iter().zip(counts) {
        if n > 0 {
            print!(" {k}={n}");
        }
    }
    println!();

    // End-to-end duration distribution over the assembled trees.
    let mut hist = LatencyHistogram::new();
    for t in &asm.traces {
        hist.record(SimDuration::from_nanos(t.duration_ns()));
    }
    if !hist.is_empty() {
        println!("trace duration: {}", hist.summary());
    }

    // The slowest traces, with their structure.
    let mut by_dur: Vec<_> = asm.traces.iter().collect();
    by_dur.sort_by_key(|t| std::cmp::Reverse(t.duration_ns()));
    for t in by_dur.iter().take(5) {
        println!(
            "  slow trace {:>6}: {:>9.2}us  {} spans over {} nodes{}",
            t.trace_id,
            t.duration_ns() as f64 / 1e3,
            t.spans.len(),
            t.node_count(),
            if t.connected() { "" } else { "  DISCONNECTED" },
        );
    }

    let disconnected = asm.disconnected();
    if disconnected.is_empty() {
        println!("connectivity: all {} traces connected", asm.len());
    } else {
        println!(
            "connectivity: {} of {} traces DISCONNECTED (ids {:?}{})",
            disconnected.len(),
            asm.len(),
            &disconnected[..disconnected.len().min(10)],
            if disconnected.len() > 10 { ", ..." } else { "" },
        );
    }

    // Replication forwarding legs: an `Rpc` span emitted from a *server*
    // node is a primary→backup forward, and must be stitched in as a
    // child of the originating request's tree — a forward with no parent
    // (or a parent missing from its trace) would hide replication time
    // from the end-to-end critical path.
    let present: std::collections::HashSet<(u64, u64)> =
        spans.iter().map(|s| (s.trace_id, s.span_id)).collect();
    let mut forward_legs = 0usize;
    let mut orphan_forwards = 0usize;
    for s in &spans {
        if s.kind == SpanKind::Rpc && s.node >= SERVER_NODE_BASE {
            forward_legs += 1;
            if s.parent_span == 0 || !present.contains(&(s.trace_id, s.parent_span)) {
                orphan_forwards += 1;
            }
        }
    }
    if forward_legs > 0 {
        println!("replication: {forward_legs} forwarding leg(s), {orphan_forwards} orphaned",);
    }

    if let Some(out) = chrome_out {
        std::fs::write(&out, asm.to_chrome_json())
            .unwrap_or_else(|e| panic!("trace_tool: cannot write {out}: {e}"));
        println!("wrote {out} (Chrome trace_event; load in chrome://tracing or Perfetto)");
    }

    if check && !disconnected.is_empty() {
        eprintln!("FAIL: --check requires every trace to be connected");
        std::process::exit(1);
    }
    if check && orphan_forwards > 0 {
        eprintln!(
            "FAIL: --check requires every replication forwarding leg to be a connected child span ({orphan_forwards} orphaned)"
        );
        std::process::exit(1);
    }
}
