//! Doorbell-batching ablation: batch size × client count × server mode.
//!
//! Clients issue closed-loop windows of point lookups through
//! [`read_batch`](catfish_core::service::ServiceClient::read_batch),
//! which coalesces requests that queue
//! behind an in-flight flush into one `Batch` frame (one ring write, one
//! CQ event, one worker wakeup). `max_batch = 1` is exactly the
//! pre-batching sequential path, so the sweep isolates what the doorbell
//! amortization buys at each concurrency level, for both polling and
//! event-driven servers.
//!
//! The KV backend keeps the index work (a short B+-tree walk) small
//! relative to per-message overhead — the regime the optimisation
//! targets; the batching layer itself is backend-generic. Results go to
//! stdout and, machine-readable, to `BENCH_batching.json`.

use std::cell::RefCell;
use std::rc::Rc;

use catfish_bench::{banner, timed, BenchArgs};
use catfish_bplus::BpConfig;
use catfish_core::config::{AccessMode, ClientConfig, ServerConfig, ServerMode};
use catfish_core::conn::RkeyAllocator;
use catfish_core::kv::{KvClient, KvRead, KvServer};
use catfish_core::{LatencyHistogram, ServiceStats};
use catfish_rdma::{profile, Endpoint, RdmaProfile};
use catfish_simnet::{now, sleep, spawn, Network, Sim, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reads issued per `read_batch` window. Windows model an application
/// that has a burst of independent lookups in hand (a multi-get); the
/// adaptive flush rule decides how many frames they become.
const WINDOW: usize = 16;

#[derive(Debug)]
struct Cell {
    mode: ServerMode,
    clients: usize,
    max_batch: usize,
    kops: f64,
    mean_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
    batches_sent: u64,
    msgs_per_batch: f64,
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Batching ablation",
        "adaptive doorbell batching: batch size × clients × server mode",
    );
    let keys = (args.size / 10).max(10_000);
    println!(
        "{} keys, {} gets/client, windows of {WINDOW}\n",
        keys, args.requests
    );
    let clients_sweep = args.clients.clone().unwrap_or_else(|| vec![1, 4, 16, 64]);
    let batch_sweep = [1usize, 4, 8, 16];

    let mut cells = Vec::new();
    for mode in [ServerMode::EventDriven, ServerMode::Polling] {
        println!("--- {mode:?} server ---");
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>12} {:>12} {:>9} {:>10}",
            "clients", "max_batch", "Kops", "mean", "p50", "p99", "batches", "msgs/batch"
        );
        for &clients in &clients_sweep {
            let mut base_kops = 0.0;
            for &max_batch in &batch_sweep {
                let cell = timed(&format!("{mode:?} n={clients} b={max_batch}"), || {
                    run_cell(
                        keys as u64,
                        clients,
                        args.requests,
                        mode,
                        max_batch,
                        args.seed,
                    )
                });
                let gain = if max_batch == 1 {
                    base_kops = cell.kops;
                    String::new()
                } else {
                    format!("  ({:+.1}% vs b=1)", (cell.kops / base_kops - 1.0) * 100.0)
                };
                println!(
                    "{:>8} {:>10} {:>10.1} {:>12} {:>12} {:>12} {:>9} {:>10.2}{}",
                    clients,
                    max_batch,
                    cell.kops,
                    fmt_ns(cell.mean_ns),
                    fmt_ns(cell.p50_ns),
                    fmt_ns(cell.p99_ns),
                    cell.batches_sent,
                    cell.msgs_per_batch,
                    gain,
                );
                cells.push(cell);
            }
        }
        println!();
    }

    let json = render_json(&cells);
    std::fs::write("BENCH_batching.json", &json).expect("write BENCH_batching.json");
    println!("wrote BENCH_batching.json ({} cells)", cells.len());
}

fn fmt_ns(ns: u64) -> String {
    format!("{:.2}us", ns as f64 / 1e3)
}

/// One (mode, clients, max_batch) measurement.
fn run_cell(
    keys: u64,
    clients: usize,
    requests: usize,
    mode: ServerMode,
    max_batch: usize,
    seed: u64,
) -> Cell {
    let sim = Sim::new();
    sim.run_until(async move {
        let net = Network::new();
        let prof = profile::infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let server = KvServer::build(
            &net,
            &prof,
            ServerConfig {
                mode,
                ..ServerConfig::default()
            },
            BpConfig::default(),
            (0..keys).map(|k| (k, k * 2)).collect(),
            &rkeys,
        );
        let eps: Vec<Endpoint> = (0..8)
            .map(|_| Endpoint::new(&net, net.add_node(prof.link), RdmaProfile::default()))
            .collect();
        let stats = Rc::new(RefCell::new((
            LatencyHistogram::new(),
            ServiceStats::default(),
        )));
        let started = now();
        let mut handles = Vec::new();
        for c in 0..clients {
            let ch = server.accept(&eps[c % 8]);
            let mut client = KvClient::new(
                ch,
                server.remote_handle(),
                ClientConfig {
                    mode: AccessMode::FastMessaging,
                    max_batch,
                    ..ClientConfig::default()
                },
                seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let stats = Rc::clone(&stats);
            handles.push(spawn(async move {
                sleep(SimDuration::from_nanos(17_039 * c as u64)).await;
                let mut rng = StdRng::seed_from_u64(seed ^ c as u64);
                let mut rec = LatencyHistogram::new();
                let mut issued = 0usize;
                while issued < requests {
                    let window = WINDOW.min(requests - issued);
                    let reads: Vec<KvRead> = (0..window)
                        .map(|_| KvRead::Get(rng.gen::<u64>() % keys))
                        .collect();
                    let t0 = now();
                    let results = client.read_batch(&reads).await;
                    // Per-op latency: the window's makespan amortized over
                    // its ops, recorded once per op so percentiles weight
                    // windows by how much work they carried.
                    let per_op = (now() - t0) / window as u64;
                    for (read, items) in reads.iter().zip(&results) {
                        let KvRead::Get(key) = *read else {
                            unreachable!()
                        };
                        debug_assert_eq!(items.first().map(|&(_, v)| v), Some(key * 2));
                        rec.record(per_op);
                    }
                    issued += window;
                }
                let mut s = stats.borrow_mut();
                s.0.merge(&rec);
                s.1.merge(&client.stats());
            }));
        }
        for h in handles {
            h.await;
        }
        let makespan = now() - started;
        let s = stats.borrow();
        let summary = s.0.summary();
        Cell {
            mode,
            clients,
            max_batch,
            kops: summary.count as f64 / makespan.as_secs_f64() / 1e3,
            mean_ns: summary.mean.as_nanos(),
            p50_ns: summary.p50.as_nanos(),
            p99_ns: summary.p99.as_nanos(),
            batches_sent: s.1.batches_sent,
            msgs_per_batch: s.1.msgs_per_batch(),
        }
    })
}

fn render_json(cells: &[Cell]) -> String {
    let mut out = String::from("{\n  \"bench\": \"batching_ablation\",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"server_mode\": \"{:?}\", \"clients\": {}, \"max_batch\": {}, \
             \"kops\": {:.2}, \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"batches_sent\": {}, \"msgs_per_batch\": {:.3}}}{}\n",
            c.mode,
            c.clients,
            c.max_batch,
            c.kops,
            c.mean_ns,
            c.p50_ns,
            c.p99_ns,
            c.batches_sent,
            c.msgs_per_batch,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
