//! Replication chaos + anti-entropy repair harness: the robustness gate
//! for per-shard k-way replication.
//!
//! Two families of cells:
//!
//! 1. **Chaos gates** — a k=3 replica set under 10% RDMA write loss on
//!    the primary's NIC, optionally with a scripted partition that kills
//!    the primary mid-batch. Clients keep inserting globally unique ids
//!    through [`CatfishClusterClient`]; an unacknowledged write suspects
//!    the primary, the shared control block promotes the next live backup
//!    (epoch bump fences the old primary), and the client reissues the
//!    *same op id* to the new primary — the applied table turns a
//!    double-landed op into an idempotent ack. After the workload joins,
//!    the harness counts each id's occurrences on the **current**
//!    primaries: `lost` and `duplicated` must both be zero. The crashed
//!    ex-primary is then healed by hash-range reconciliation and revived;
//!    every replica's root digest must agree afterwards, including over
//!    writes issued *after* the revival.
//!
//! 2. **Repair scaling** — a backup is deliberately diverged from its
//!    primary by `d` entries, then repaired. The bisection walk must
//!    converge in `O(log n)` batched rounds and, at divergence ≤ 1% of
//!    `n`, move at least 5x fewer wire bytes than a naive full resync.
//!
//! Every gate is self-asserted; the measured numbers land in
//! `BENCH_repair.json`. A virtual-time watchdog panics if a cell wedges
//! instead of recovering.

use std::cell::RefCell;
use std::rc::Rc;

use catfish_bench::{banner, timed, BenchArgs};
use catfish_core::client::CatfishClusterClient;
use catfish_core::config::{AccessMode, AdaptiveParams, ClientConfig, ServerConfig, ServerMode};
use catfish_core::conn::RkeyAllocator;
use catfish_core::obs::SpanLog;
use catfish_core::server::CatfishCluster;
use catfish_core::service::{RangeDigest, RepairReport};
use catfish_core::ServiceStats;
use catfish_rdma::profile::infiniband_100g;
use catfish_rdma::{FaultConfig, FaultPlan};
use catfish_rtree::{RTreeConfig, Rect};
use catfish_simnet::{now, sleep, spawn, Network, Sim, SimDuration, SimTime};

/// Virtual-time budget per cell: promotion plus reissue must converge,
/// not crawl.
const WATCHDOG: SimDuration = SimDuration::from_secs(300);

const CLIENTS: usize = 4;

/// Ids far above the pre-loaded dataset so occurrence counting is exact.
const ID_BASE: u64 = 10_000_000;

/// Ids for the post-heal write probe (disjoint from the chaos workload).
const POST_HEAL_BASE: u64 = 20_000_000;

/// When the scripted partition drops the primary off the fabric —
/// far enough in for every client to have traffic in flight.
const CRASH_AT: SimDuration = SimDuration::from_micros(400);

fn unique_rect(op: u64) -> Rect {
    let x = (op % 997) as f64 / 997.0 * 0.9;
    let y = (op / 997) as f64 / 997.0 * 0.9;
    Rect::new(x, y, x + 0.0004, y + 0.0004)
}

fn dataset(n: usize) -> Vec<(Rect, u64)> {
    (0..n as u64)
        .map(|i| {
            let x = (i % 256) as f64 / 256.0;
            let y = (i / 256) as f64 / 256.0 % 1.0;
            (Rect::new(x, y, x + 0.003, y + 0.003), i)
        })
        .collect()
}

struct ChaosCell {
    label: &'static str,
    fault: FaultConfig,
    /// Arm the scripted partition that kills shard 0's primary mid-batch.
    kill_primary: bool,
}

#[derive(Debug)]
struct ChaosResult {
    label: String,
    shards: usize,
    replicas: usize,
    ops: usize,
    makespan: SimDuration,
    stats: ServiceStats,
    lost: usize,
    duplicated: usize,
    epoch: u64,
    old_primary: usize,
    new_primary: usize,
    killed: bool,
    /// The heal of the crashed ex-primary (zeroed when nothing crashed).
    heal: RepairReport,
    /// All replicas' root digests agree after heal + fresh writes.
    post_heal_consistent: bool,
    /// The cell's distributed trace (JSONL), when `--trace-out` is set —
    /// forwarding legs included, for the `trace_tool --check` gate.
    spans_jsonl: Option<String>,
}

/// Root digest of one replica's index: `(xor_fingerprint, entry_count)`
/// over the full repair-key space.
fn root_digest(cluster: &CatfishCluster, shard: usize, r: usize) -> (u64, u64) {
    cluster
        .replica(shard, r)
        .with_index(|ix| ix.digest_range(0, u64::MAX))
}

fn run_chaos_cell(
    cell: &ChaosCell,
    args: &BenchArgs,
    size: usize,
    ops: usize,
    shards: usize,
    replicas: usize,
) -> ChaosResult {
    assert!(replicas >= 2, "chaos cells need a backup to promote");
    let sim = Sim::new();
    let fault = cell.fault;
    let kill = cell.kill_primary;
    let seed = args.seed;
    let trace = args.trace_out.is_some();
    let timeout = SimDuration::from_micros(args.timeout_us.unwrap_or(500));
    // A tighter budget than fault_sweep's: retry exhaustion is the
    // failure detector here, and 16 straight losses at 10% is already
    // a once-per-1e16 event.
    let max_retries = args.max_retries.unwrap_or(16);
    #[allow(clippy::type_complexity)]
    let (
        makespan,
        stats,
        lost,
        duplicated,
        epoch,
        old_primary,
        new_primary,
        heal,
        consistent,
        spans,
    ): (
        SimDuration,
        ServiceStats,
        usize,
        usize,
        u64,
        usize,
        usize,
        RepairReport,
        bool,
        Option<String>,
    ) = sim.run_until(async move {
        let net = Network::new();
        let profile = infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let hb_interval = SimDuration::from_millis(1);
        let cluster = CatfishCluster::build_replicated(
            &net,
            &profile,
            ServerConfig {
                cores: 4,
                mode: ServerMode::EventDriven,
                heartbeat_interval: hb_interval,
                ..ServerConfig::default()
            },
            RTreeConfig::with_max_entries(88),
            dataset(size),
            shards,
            replicas,
            &rkeys,
        );
        // Chaos rides shard 0's build-time primary only: write loss
        // for the whole run, plus (when armed) a partition window
        // that takes the whole NIC off the fabric mid-batch and
        // never gives it back — a crash, as the fabric sees one.
        let old_primary = cluster.ctl(0).primary();
        let plan = FaultPlan::new(
            FaultConfig {
                partition_window: kill
                    .then_some((SimTime::ZERO + CRASH_AT, SimDuration::from_secs(600))),
                ..fault
            },
            seed,
        );
        cluster
            .replica(0, old_primary)
            .endpoint()
            .set_fault_plan(Some(plan.clone()));
        let span_log = trace.then(SpanLog::new);
        if let Some(log) = &span_log {
            cluster.set_span_log(log);
        }
        cluster.start_heartbeats();
        spawn(async {
            sleep(WATCHDOG).await;
            panic!("repair_sweep chaos cell wedged: no convergence within {WATCHDOG}");
        });
        let started = now();
        let stats: Rc<RefCell<ServiceStats>> = Rc::default();
        let lost: Rc<RefCell<Vec<u64>>> = Rc::default();
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let mut client = CatfishClusterClient::connect(
                &cluster,
                &net,
                &profile,
                ClientConfig {
                    mode: AccessMode::Adaptive(AdaptiveParams {
                        heartbeat_interval: hb_interval,
                        ..AdaptiveParams::default()
                    }),
                    request_timeout: timeout,
                    max_retries,
                    ..ClientConfig::default()
                },
                seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            client.set_flight_ids(c as u32);
            if let Some(log) = &span_log {
                client.set_span_log(log.for_node(c as u32));
            }
            let stats = Rc::clone(&stats);
            let lost = Rc::clone(&lost);
            handles.push(spawn(async move {
                sleep(SimDuration::from_nanos(13_007 * c as u64)).await;
                for i in 0..ops as u64 {
                    let op = (c * ops) as u64 + i;
                    let id = ID_BASE + op;
                    if !client.insert(unique_rect(op), id).await {
                        lost.borrow_mut().push(id);
                    }
                    // Read back an earlier acked insert. Right after
                    // the crash a read may still route to the dead
                    // primary (its staleness hasn't tripped yet), so
                    // retry: the failsafe fails the read over to a
                    // live backup within a few heartbeat intervals.
                    if i % 8 == 7 {
                        let back = ID_BASE + (c * ops) as u64 + i / 2;
                        let q = unique_rect((c * ops) as u64 + i / 2);
                        let mut found = false;
                        for _ in 0..32 {
                            if client.search(&q).await.contains(&back) {
                                found = true;
                                break;
                            }
                            sleep(SimDuration::from_millis(2)).await;
                        }
                        assert!(found, "read-back lost acked id {back} (client {c}, op {i})");
                    }
                }
                stats.borrow_mut().merge(&client.stats());
            }));
        }
        for h in handles {
            h.await;
        }
        let makespan = now() - started;
        let mut st = stats.borrow().to_owned();
        st.merge(&cluster.stats());

        // Exactly-once audit on the *current* primaries: every acked
        // id appears exactly once across the shards' live views, no
        // matter how many sends were lost or reissued across the
        // promotion.
        let mut lost = lost.borrow().to_owned();
        let mut duplicated = Vec::new();
        for op in 0..(CLIENTS * ops) as u64 {
            let id = ID_BASE + op;
            let q = unique_rect(op);
            let hits: usize = (0..cluster.shards())
                .map(|s| {
                    cluster
                        .shard(s)
                        .with_index(|t| t.search(&q).iter().filter(|d| **d == id).count())
                })
                .sum();
            match hits {
                0 => lost.push(id),
                1 => {}
                _ => duplicated.push(id),
            }
        }
        lost.sort_unstable();
        lost.dedup();
        for s in 0..cluster.shards() {
            for r in 0..cluster.replicas() {
                cluster
                    .replica(s, r)
                    .with_index(|t| t.check_invariants())
                    .unwrap();
            }
        }
        let ctl = cluster.ctl(0);
        let (epoch, new_primary) = (ctl.epoch(), ctl.primary());
        if kill {
            assert!(
                epoch >= 1 && new_primary != old_primary && !ctl.is_alive(old_primary),
                "partitioned primary was never deposed (epoch {epoch}, primary {new_primary})"
            );
        }

        // Heal the crashed member: lift the partition (the operator
        // rebooted the NIC), reconcile by hash-range bisection, and
        // revive. Every surviving replica already agrees (synchronous
        // forwarding); the revived one must agree after repair — and
        // keep agreeing for writes issued after revival.
        let heal = if kill {
            cluster
                .replica(0, old_primary)
                .endpoint()
                .set_fault_plan(None);
            let report = cluster.heal(0, old_primary);
            assert!(report.converged, "heal failed to converge: {report:?}");
            report
        } else {
            RepairReport::default()
        };
        let mut probe = CatfishClusterClient::connect(
            &cluster,
            &net,
            &profile,
            ClientConfig {
                mode: AccessMode::FastMessaging,
                request_timeout: timeout,
                max_retries,
                ..ClientConfig::default()
            },
            seed ^ 0xD1E5_ED00,
        );
        for j in 0..16u64 {
            let r = unique_rect(900_000 + j);
            assert!(
                probe.insert(r, POST_HEAL_BASE + j).await,
                "post-heal insert refused"
            );
        }
        st.merge(&probe.stats());
        let mut consistent = true;
        for s in 0..cluster.shards() {
            let want = root_digest(&cluster, s, cluster.ctl(s).primary());
            for r in 0..cluster.replicas() {
                if cluster.ctl(s).is_alive(r) {
                    consistent &= root_digest(&cluster, s, r) == want;
                }
            }
        }
        (
            makespan,
            st,
            lost.len(),
            duplicated.len(),
            epoch,
            old_primary,
            new_primary,
            heal,
            consistent,
            span_log.map(|l| l.to_jsonl()),
        )
    });
    ChaosResult {
        label: cell.label.to_string(),
        shards,
        replicas,
        ops: CLIENTS * ops,
        makespan,
        stats,
        lost,
        duplicated,
        epoch,
        old_primary,
        new_primary,
        killed: cell.kill_primary,
        heal,
        post_heal_consistent: consistent,
        spans_jsonl: spans,
    }
}

#[derive(Debug)]
struct RepairCell {
    label: String,
    n: usize,
    divergence: usize,
    report: RepairReport,
}

/// Builds a 2-member replica set over `n` entries, deletes `d` entries
/// spread across the backup's repair-key space, and reconciles.
fn run_repair_cell(label: &str, n: usize, d: usize) -> RepairCell {
    let sim = Sim::new();
    let report = sim.run_until(async move {
        let net = Network::new();
        let profile = infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let cluster = CatfishCluster::build_replicated(
            &net,
            &profile,
            ServerConfig {
                cores: 2,
                mode: ServerMode::EventDriven,
                ..ServerConfig::default()
            },
            RTreeConfig::with_max_entries(88),
            dataset(n),
            1,
            2,
            &rkeys,
        );
        // Diverge the backup: drop `d` entries spread evenly across the
        // key space — the scattered case, where a contiguous-range
        // shortcut would not help the walk.
        let mut keys: Vec<u64> = cluster
            .replica(0, 1)
            .with_index(|ix| ix.items_in_range(0, u64::MAX))
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        keys.sort_unstable();
        let stride = (keys.len() / d.max(1)).max(1);
        let victims: Vec<u64> = keys.iter().step_by(stride).take(d).copied().collect();
        assert_eq!(victims.len(), d, "dataset too small for divergence {d}");
        for k in &victims {
            cluster.replica(0, 1).with_index_mut(|ix| {
                ix.remove_by_repair_key(*k);
            });
        }
        cluster.repair_replica(0, 1)
    });
    RepairCell {
        label: label.to_string(),
        n,
        divergence: d,
        report,
    }
}

fn json_chaos(r: &ChaosResult) -> String {
    format!(
        concat!(
            "{{\"label\":\"{}\",\"shards\":{},\"replicas\":{},\"ops\":{},",
            "\"makespan_ms\":{:.3},\"kill_primary\":{},\"timeouts\":{},\"retransmits\":{},",
            "\"repl_forwards\":{},\"repl_dups\":{},\"repl_fenced\":{},\"repl_lag_ns\":{},",
            "\"epoch\":{},\"old_primary\":{},\"new_primary\":{},",
            "\"lost\":{},\"duplicated\":{},\"exactly_once\":{},",
            "\"heal_rounds\":{},\"heal_transferred\":{},\"heal_removed\":{},",
            "\"heal_bytes_moved\":{},\"heal_full_resync_bytes\":{},\"heal_converged\":{},",
            "\"post_heal_consistent\":{}}}"
        ),
        r.label,
        r.shards,
        r.replicas,
        r.ops,
        r.makespan.as_nanos() as f64 / 1e6,
        r.killed,
        r.stats.timeouts,
        r.stats.retransmits,
        r.stats.repl_forwards,
        r.stats.repl_dups,
        r.stats.repl_fenced,
        r.stats.repl_lag_ns,
        r.epoch,
        r.old_primary,
        r.new_primary,
        r.lost,
        r.duplicated,
        r.lost == 0 && r.duplicated == 0,
        r.heal.rounds,
        r.heal.transferred,
        r.heal.removed,
        r.heal.bytes_moved,
        r.heal.full_resync_bytes,
        r.heal.converged,
        r.post_heal_consistent,
    )
}

fn json_repair(c: &RepairCell) -> String {
    let r = &c.report;
    let ratio = if r.bytes_moved > 0 {
        r.full_resync_bytes as f64 / r.bytes_moved as f64
    } else {
        f64::INFINITY
    };
    format!(
        concat!(
            "{{\"label\":\"{}\",\"n\":{},\"divergence\":{},\"rounds\":{},",
            "\"ranges_compared\":{},\"transferred\":{},\"removed\":{},",
            "\"bytes_moved\":{},\"full_resync_bytes\":{},\"resync_savings\":{:.2},",
            "\"converged\":{}}}"
        ),
        c.label,
        c.n,
        c.divergence,
        r.rounds,
        r.ranges_compared,
        r.transferred,
        r.removed,
        r.bytes_moved,
        r.full_resync_bytes,
        ratio,
        r.converged,
    )
}

fn log2_ceil(n: usize) -> u64 {
    (usize::BITS - n.next_power_of_two().leading_zeros()) as u64
}

fn main() {
    let args = BenchArgs::parse();
    let shards = args.shards.as_ref().map_or(1, |v| v[0]);
    let replicas = args.replicas.max(3);
    banner(
        "Repair sweep",
        "exactly-once across primary failover; O(log n) anti-entropy repair",
    );
    let size = if args.paper {
        args.size
    } else {
        args.size.min(20_000)
    };
    let ops = if args.paper {
        args.requests
    } else {
        args.requests.min(150)
    };
    println!(
        "dataset {size} rects, {shards} shard(s) x {replicas} replicas, {CLIENTS} clients x {ops} inserts, timeout {} us, retries {} (chaos on shard 0's primary)",
        args.timeout_us.unwrap_or(500),
        args.max_retries.unwrap_or(16),
    );

    let mut cells = vec![
        ChaosCell {
            label: "loss_10pct",
            fault: FaultConfig {
                drop_write: 0.10,
                ..FaultConfig::off()
            },
            kill_primary: false,
        },
        ChaosCell {
            label: "primary_crash",
            fault: FaultConfig {
                drop_write: 0.10,
                ..FaultConfig::off()
            },
            kill_primary: true,
        },
    ];
    // Explicit knobs replace the built-in pair with one custom cell;
    // --kill-primary arms the scripted mid-batch partition.
    if args.loss > 0.0 || args.stall > 0.0 || args.hb_drop > 0.0 {
        cells = vec![ChaosCell {
            label: "custom",
            fault: FaultConfig {
                drop_write: args.loss,
                stall: args.stall,
                suppress_heartbeat: args.hb_drop,
                ..FaultConfig::off()
            },
            kill_primary: args.kill_primary,
        }];
    }

    let mut chaos = Vec::new();
    for cell in &cells {
        let r = timed(cell.label, || {
            run_chaos_cell(cell, &args, size, ops, shards, replicas)
        });
        println!(
            "{:<14} timeouts {:>5}  retransmits {:>5}  forwards {:>6}  dups {:>4}  fenced {:>4}  epoch {}  primary {}->{}  lost {} dup {}  heal rounds {} moved {}B  consistent {}",
            r.label,
            r.stats.timeouts,
            r.stats.retransmits,
            r.stats.repl_forwards,
            r.stats.repl_dups,
            r.stats.repl_fenced,
            r.epoch,
            r.old_primary,
            r.new_primary,
            r.lost,
            r.duplicated,
            r.heal.rounds,
            r.heal.bytes_moved,
            r.post_heal_consistent,
        );
        assert_eq!(r.lost, 0, "{}: {} acked ops lost", r.label, r.lost);
        assert_eq!(
            r.duplicated, 0,
            "{}: {} acked ops applied twice",
            r.label, r.duplicated
        );
        assert!(
            r.post_heal_consistent,
            "{}: replicas diverged after heal",
            r.label
        );
        if r.killed {
            assert!(
                r.heal.converged,
                "{}: crashed primary failed to reconverge",
                r.label
            );
        }
        chaos.push(r);
    }
    // Export the last traced chaos cell for `trace_tool --check`: the
    // forwarding legs must be connected child spans of their requests.
    if let Some(base) = &args.trace_out {
        if let Some(jsonl) = chaos.iter().rev().find_map(|r| r.spans_jsonl.as_ref()) {
            let path = format!("{base}.spans.jsonl");
            std::fs::write(&path, jsonl).expect("write span export");
            println!("wrote {path}");
        }
    }

    // Repair scaling: rounds grow with log2(n), not with n; at ≤1%
    // divergence the walk beats a full resync by ≥5x in wire bytes.
    let repair_grid: Vec<(String, usize, usize)> = {
        let mut g = vec![
            ("scale_n4096".to_string(), 4096, 16),
            ("scale_n16384".to_string(), 16384, 16),
            ("scale_n65536".to_string(), 65536, 16),
        ];
        for permille in [1usize, 5, 10] {
            let n = 65_536;
            g.push((
                format!("diverge_{permille}permille"),
                n,
                (n * permille / 1000).max(1),
            ));
        }
        g
    };
    let mut repairs = Vec::new();
    for (label, n, d) in &repair_grid {
        let c = timed(label, || run_repair_cell(label, *n, *d));
        let r = &c.report;
        let bound = 2 * log2_ceil(*n) + 2;
        println!(
            "{:<22} n {:>6}  d {:>4}  rounds {:>2} (≤{})  ranges {:>5}  transferred {:>4}  moved {:>8}B vs resync {:>9}B ({:.1}x)",
            c.label,
            c.n,
            c.divergence,
            r.rounds,
            bound,
            r.ranges_compared,
            r.transferred,
            r.bytes_moved,
            r.full_resync_bytes,
            r.full_resync_bytes as f64 / r.bytes_moved.max(1) as f64,
        );
        assert!(r.converged, "{}: repair did not converge", c.label);
        assert_eq!(
            r.transferred as usize, c.divergence,
            "{}: wrong entry count re-shipped",
            c.label
        );
        assert!(
            r.rounds <= bound,
            "{}: {} rounds breaks the O(log n) bound {}",
            c.label,
            r.rounds,
            bound
        );
        assert!(
            r.bytes_moved * 5 <= r.full_resync_bytes,
            "{}: repair moved {} bytes, full resync {} — less than 5x savings",
            c.label,
            r.bytes_moved,
            r.full_resync_bytes
        );
        repairs.push(c);
    }

    let body = format!(
        "{{\"harness\":\"repair_sweep\",\"clients\":{CLIENTS},\"shards\":{shards},\"replicas\":{replicas},\"ops_per_client\":{ops},\"dataset\":{size},\"seed\":{},\"chaos\":[\n{}\n],\"repair\":[\n{}\n]}}\n",
        args.seed,
        chaos.iter().map(json_chaos).collect::<Vec<_>>().join(",\n"),
        repairs.iter().map(json_repair).collect::<Vec<_>>().join(",\n"),
    );
    let out = args
        .metrics_out
        .clone()
        .map(|b| format!("{b}.json"))
        .unwrap_or_else(|| "BENCH_repair.json".to_string());
    std::fs::write(&out, body).expect("write repair sweep results");
    println!("all gates green: wrote {out}");
}
