//! SIMD / fast-path ablation gate (`BENCH_simd.json`).
//!
//! Two before/after measurements, each with a hard gate:
//!
//! 1. **Node-visit microbench** (wall clock): one full fanout-88 node
//!    visit through the legacy array-of-structs path (owned
//!    `decode_node`, scalar per-entry `Rect::intersects`) versus the
//!    struct-of-arrays path (`decode_lanes_into` into pooled scratch,
//!    branchless `window_hits` bitmask) — the code the chunk store now
//!    runs on every server-side search. Gate: **> 2x** speedup.
//! 2. **End-to-end throughput at 64 clients** (simulated): the R-tree
//!    service before this PR's server-side changes (polling workers,
//!    one doorbell per response write) versus after (adaptive
//!    spin → yield → block workers, merged response doorbells). Gate:
//!    the optimized configuration must gain throughput.
//!
//! A failed gate prints the offending numbers and exits nonzero, so CI
//! can hold the line. Results go to stdout and `BENCH_simd.json`.

use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;
use std::time::Instant;

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::client::CatfishClient;
use catfish_core::config::{AccessMode, ClientConfig, ServerConfig, ServerMode};
use catfish_core::conn::RkeyAllocator;
use catfish_core::server::CatfishServer;
use catfish_core::LatencyHistogram;
use catfish_rdma::{profile, Endpoint, RdmaProfile};
use catfish_rtree::codec::{ChunkLayout, LaneNode};
use catfish_rtree::{Entry, Node, Rect};
use catfish_simnet::{now, sleep, spawn, Network, Sim, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimum node-visit speedup (SoA bitmask over AoS scalar) to pass.
const NODE_VISIT_GATE: f64 = 2.0;
/// Searches issued per `read_batch` window.
const WINDOW: usize = 8;
/// End-to-end concurrency for the before/after comparison.
const E2E_CLIENTS: usize = 64;

struct VisitBench {
    aos_ns: f64,
    soa_ns: f64,
    speedup: f64,
}

struct E2eCell {
    label: &'static str,
    mode: ServerMode,
    merge_writes: bool,
    kops: f64,
    mean_ns: u64,
    p99_ns: u64,
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "SIMD sweep",
        "SoA node layout, merged doorbells, adaptive spin: before/after gates",
    );

    // --- Gate 1: node-visit microbench -----------------------------------
    let visit = node_visit_bench();
    println!(
        "node visit (fanout 88): AoS scalar {:.0} ns, SoA bitmask {:.0} ns  => {:.2}x (gate > {:.1}x)",
        visit.aos_ns, visit.soa_ns, visit.speedup, NODE_VISIT_GATE
    );
    let visit_pass = visit.speedup > NODE_VISIT_GATE;

    // --- Gate 2: end-to-end at 64 clients --------------------------------
    let rects = (args.size / 20).max(20_000);
    let requests = (args.requests / 5).max(100);
    println!(
        "\ne2e: {rects} rects, {E2E_CLIENTS} clients x {requests} searches, windows of {WINDOW}"
    );
    let baseline = timed("e2e baseline", || {
        run_e2e(
            "baseline",
            ServerMode::Polling,
            false,
            rects,
            requests,
            args.seed,
        )
    });
    let optimized = timed("e2e optimized", || {
        run_e2e(
            "optimized",
            ServerMode::AdaptiveSpin,
            true,
            rects,
            requests,
            args.seed,
        )
    });
    let gain_pct = (optimized.kops / baseline.kops - 1.0) * 100.0;
    for c in [&baseline, &optimized] {
        println!(
            "  {:<10} {:?} merge={:<5} {:>10.1} Kops  mean {:>9.2}us  p99 {:>9.2}us",
            c.label,
            c.mode,
            c.merge_writes,
            c.kops,
            c.mean_ns as f64 / 1e3,
            c.p99_ns as f64 / 1e3,
        );
    }
    println!("  throughput gain at {E2E_CLIENTS} clients: {gain_pct:+.1}% (gate > 0)");
    let e2e_pass = optimized.kops > baseline.kops;

    let pass = visit_pass && e2e_pass;
    let json = render_json(
        &visit, visit_pass, &baseline, &optimized, gain_pct, e2e_pass,
    );
    std::fs::write("BENCH_simd.json", &json).expect("write BENCH_simd.json");
    println!("\nwrote BENCH_simd.json (pass: {pass})");
    if !visit_pass {
        eprintln!(
            "GATE FAILED: node-visit speedup {:.2}x <= {NODE_VISIT_GATE:.1}x",
            visit.speedup
        );
    }
    if !e2e_pass {
        eprintln!(
            "GATE FAILED: optimized e2e {:.1} Kops <= baseline {:.1} Kops",
            optimized.kops, baseline.kops
        );
    }
    if !pass {
        std::process::exit(1);
    }
}

/// A full fanout-88 leaf whose entries scatter over the unit square.
fn full_leaf(max_entries: usize) -> Node {
    let mut n = Node::new(0);
    for i in 0..max_entries as u64 {
        let x = (i as f64 * 0.0137) % 0.9;
        n.entries
            .push(Entry::data(Rect::new(x, x, x + 0.01, x + 0.01), i));
    }
    n
}

/// Wall-clock before/after of one node visit: decode + window test over
/// every entry, the inner loop of every server-side search.
fn node_visit_bench() -> VisitBench {
    const ITERS: u32 = 200_000;
    let layout = ChunkLayout::for_max_entries(88);
    let chunk = layout.encode_node(&full_leaf(88), 7);
    let query = Rect::new(0.1, 0.1, 0.2, 0.2);

    let aos = |chunk: &[u8]| {
        let (node, _) = layout.decode_node(chunk).expect("valid chunk");
        node.entries
            .iter()
            .filter(|e| e.mbr.intersects(&query))
            .count()
    };
    let mut lanes = LaneNode::new();
    let mut soa = |chunk: &[u8]| {
        layout
            .decode_lanes_into(chunk, &mut lanes)
            .expect("valid chunk");
        lanes.window_hits(&query).count_ones() as usize
    };

    // Warm up both paths (allocator, caches, lane scratch growth).
    for _ in 0..1_000 {
        black_box(aos(black_box(&chunk)));
        black_box(soa(black_box(&chunk)));
    }
    let t = Instant::now();
    for _ in 0..ITERS {
        black_box(aos(black_box(&chunk)));
    }
    let aos_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;
    let t = Instant::now();
    for _ in 0..ITERS {
        black_box(soa(black_box(&chunk)));
    }
    let soa_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;
    VisitBench {
        aos_ns,
        soa_ns,
        speedup: aos_ns / soa_ns,
    }
}

/// One end-to-end measurement: 64 closed-loop fast-messaging clients
/// searching a paper-config R-tree through the given server mode.
fn run_e2e(
    label: &'static str,
    mode: ServerMode,
    merge_writes: bool,
    rects: usize,
    requests: usize,
    seed: u64,
) -> E2eCell {
    let sim = Sim::new();
    sim.run_until(async move {
        let net = Network::new();
        let prof = profile::infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let server = CatfishServer::build(
            &net,
            &prof,
            ServerConfig {
                mode,
                merge_writes,
                ..ServerConfig::default()
            },
            paper_tree_config(),
            catfish_workload::uniform_rects(rects, 1e-4, seed),
            &rkeys,
        );
        let eps: Vec<Endpoint> = (0..8)
            .map(|_| Endpoint::new(&net, net.add_node(prof.link), RdmaProfile::default()))
            .collect();
        let hist = Rc::new(RefCell::new(LatencyHistogram::new()));
        let started = now();
        let mut handles = Vec::new();
        for c in 0..E2E_CLIENTS {
            let ch = server.accept(&eps[c % 8]);
            let mut client = CatfishClient::new(
                ch,
                server.remote_handle(),
                ClientConfig {
                    mode: AccessMode::FastMessaging,
                    ..ClientConfig::default()
                },
                seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let hist = Rc::clone(&hist);
            handles.push(spawn(async move {
                sleep(SimDuration::from_nanos(17_039 * c as u64)).await;
                let mut rng = StdRng::seed_from_u64(seed ^ c as u64);
                let mut rec = LatencyHistogram::new();
                let mut issued = 0usize;
                while issued < requests {
                    let window = WINDOW.min(requests - issued);
                    let queries: Vec<Rect> = (0..window)
                        .map(|_| {
                            let x = rng.gen::<f64>() * 0.98;
                            let y = rng.gen::<f64>() * 0.98;
                            Rect::new(x, y, x + 0.01, y + 0.01)
                        })
                        .collect();
                    let t0 = now();
                    let results = client.read_batch(&queries).await;
                    debug_assert_eq!(results.len(), queries.len());
                    let per_op = (now() - t0) / window as u64;
                    for _ in 0..window {
                        rec.record(per_op);
                    }
                    issued += window;
                }
                hist.borrow_mut().merge(&rec);
            }));
        }
        for h in handles {
            h.await;
        }
        let makespan = now() - started;
        let summary = hist.borrow().summary();
        E2eCell {
            label,
            mode,
            merge_writes,
            kops: summary.count as f64 / makespan.as_secs_f64() / 1e3,
            mean_ns: summary.mean.as_nanos(),
            p99_ns: summary.p99.as_nanos(),
        }
    })
}

fn render_json(
    visit: &VisitBench,
    visit_pass: bool,
    baseline: &E2eCell,
    optimized: &E2eCell,
    gain_pct: f64,
    e2e_pass: bool,
) -> String {
    let cell = |c: &E2eCell| {
        format!(
            "{{\"label\": \"{}\", \"server_mode\": \"{:?}\", \"merge_writes\": {}, \
             \"kops\": {:.2}, \"mean_ns\": {}, \"p99_ns\": {}}}",
            c.label, c.mode, c.merge_writes, c.kops, c.mean_ns, c.p99_ns
        )
    };
    format!(
        "{{\n  \"bench\": \"simd_sweep\",\n  \"node_visit\": {{\"fanout\": 88, \
         \"aos_ns\": {:.1}, \"soa_ns\": {:.1}, \"speedup\": {:.3}, \
         \"gate_min_speedup\": {NODE_VISIT_GATE}, \"pass\": {}}},\n  \
         \"e2e\": {{\"clients\": {E2E_CLIENTS}, \"baseline\": {}, \"optimized\": {}, \
         \"kops_gain_pct\": {:.2}, \"pass\": {}}},\n  \"pass\": {}\n}}\n",
        visit.aos_ns,
        visit.soa_ns,
        visit.speedup,
        visit_pass,
        cell(baseline),
        cell(optimized),
        gain_pct,
        e2e_pass,
        visit_pass && e2e_pass,
    )
}
