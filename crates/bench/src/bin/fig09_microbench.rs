//! Figure 9 — micro-benchmark of the communication methods.
//!
//! A client requests data chunks of 2 B … 8 MB; the next transfer begins
//! only after the previous completes. Reports round-trip latency (a) and
//! the resulting goodput (b) for TCP/IP over 1 G and 40 G Ethernet, RDMA
//! Read, and RDMA Write.

use catfish_bench::{banner, BenchArgs};
use catfish_rdma::tcp::TcpEndpoint;
use catfish_rdma::{profile, Endpoint, MemoryRegion, NetProfile};
use catfish_simnet::{now, spawn, Network, Sim};

const SIZES: [usize; 12] = [
    2,
    64,
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
    8 << 20,
];
const REPS: usize = 20;

fn main() {
    let _args = BenchArgs::parse();
    banner(
        "Fig. 9",
        "communication micro-benchmark: latency (a), throughput (b)",
    );
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "size", "TCP-1G", "TCP-40G", "RDMA Read", "RDMA Write"
    );
    let mut rows: Vec<[f64; 4]> = Vec::new();
    for &size in &SIZES {
        let tcp1 = tcp_round_trip(&profile::ethernet_1g(), size);
        let tcp40 = tcp_round_trip(&profile::ethernet_40g(), size);
        let read = rdma_latency(&profile::infiniband_100g(), size, Verb::Read);
        let write = rdma_latency(&profile::infiniband_100g(), size, Verb::Write);
        println!(
            "{:>10} {:>14} {:>14} {:>14} {:>14}",
            human_size(size),
            fmt_us(tcp1),
            fmt_us(tcp40),
            fmt_us(read),
            fmt_us(write),
        );
        rows.push([tcp1, tcp40, read, write]);
    }
    println!("\nthroughput (Gbps):");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "size", "TCP-1G", "TCP-40G", "RDMA Read", "RDMA Write"
    );
    for (i, &size) in SIZES.iter().enumerate() {
        let gbps = |lat_us: f64| size as f64 * 8.0 / (lat_us * 1e3);
        println!(
            "{:>10} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            human_size(size),
            gbps(rows[i][0]),
            gbps(rows[i][1]),
            gbps(rows[i][2]),
            gbps(rows[i][3]),
        );
    }
}

enum Verb {
    Read,
    Write,
}

/// Mean time for: send a 1-byte request, receive a `size`-byte response.
fn tcp_round_trip(profile: &NetProfile, size: usize) -> f64 {
    let profile = *profile;
    let sim = Sim::new();
    sim.run_until(async move {
        let net = Network::new();
        let a = TcpEndpoint::new(&net, net.add_node(profile.link), profile.tcp, None);
        let b = TcpEndpoint::new(&net, net.add_node(profile.link), profile.tcp, None);
        let (client, server) = a.connect(&b);
        spawn(async move {
            while let Some(req) = server.recv().await {
                let n = usize::from_le_bytes(req[..8].try_into().expect("sized"));
                server.send(vec![0u8; n]).await;
            }
        });
        let t0 = now();
        for _ in 0..REPS {
            client.send(size.to_le_bytes().to_vec()).await;
            let resp = client.recv().await.expect("server alive");
            assert_eq!(resp.len(), size);
        }
        (now() - t0).as_micros_f64() / REPS as f64
    })
}

/// Mean completion time of one one-sided verb moving `size` bytes.
fn rdma_latency(profile: &NetProfile, size: usize, verb: Verb) -> f64 {
    let profile = *profile;
    let sim = Sim::new();
    sim.run_until(async move {
        let net = Network::new();
        let client = Endpoint::new(&net, net.add_node(profile.link), profile.rdma);
        let server = Endpoint::new(&net, net.add_node(profile.link), profile.rdma);
        let mr = MemoryRegion::new(size.max(8), 1);
        server.register(mr);
        let (qp, _server_qp) = client.connect(&server);
        let payload = vec![0u8; size];
        let t0 = now();
        for _ in 0..REPS {
            match verb {
                Verb::Read => {
                    let data = qp.read(1, 0, size).await.expect("registered");
                    assert_eq!(data.len(), size);
                }
                Verb::Write => qp.write(1, 0, &payload).await.expect("registered"),
            }
        }
        (now() - t0).as_micros_f64() / REPS as f64
    })
}

fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

fn fmt_us(us: f64) -> String {
    if us >= 1000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{us:.2}us")
    }
}
