//! Chaos harness: sweeps injected fault rates (RDMA write loss, worker
//! stalls, heartbeat suppression, payload corruption) over an insert-heavy
//! workload and checks the exactly-once contract — every acknowledged
//! insert is in the tree exactly once, no matter how many frames were
//! dropped, duplicated, corrupted, or discarded by a crashing worker.
//!
//! Each client inserts rectangles tagged with globally unique ids, so a
//! duplicated (non-idempotent) retry would be visible as the same id
//! appearing twice in a server-side search. After the workload joins, the
//! harness searches the server's tree for every inserted id and counts
//! occurrences: `lost` (0 hits) and `duplicated` (>1 hits) must both be
//! zero in every cell.
//!
//! Emits `BENCH_faults.json` with the fault-rate → p99 / retransmission
//! curve (see EXPERIMENTS.md). A virtual-time watchdog panics if a cell
//! wedges instead of recovering.

use std::cell::RefCell;
use std::rc::Rc;

use catfish_bench::{banner, timed, BenchArgs};
use catfish_core::client::CatfishClusterClient;
use catfish_core::config::{AccessMode, AdaptiveParams, ClientConfig, ServerConfig, ServerMode};
use catfish_core::conn::RkeyAllocator;
use catfish_core::obs::{Anomaly, FlightDump, LatencyHistogram};
use catfish_core::server::{CatfishCluster, CatfishServer};
use catfish_core::CatfishClient;
use catfish_core::ServiceStats;
use catfish_rdma::profile::infiniband_100g;
use catfish_rdma::{Endpoint, FaultConfig, FaultCounters, FaultPlan, RdmaProfile};
use catfish_rtree::{RTreeConfig, Rect};
use catfish_simnet::{now, sleep, spawn, Network, Sim, SimDuration};

/// Virtual-time budget per cell: a wedged run (a request loop that stops
/// making progress but keeps arming timers) trips this instead of hanging.
const WATCHDOG: SimDuration = SimDuration::from_secs(300);

const CLIENTS: usize = 4;

/// Ids far above the pre-loaded dataset so occurrence counting is exact.
const ID_BASE: u64 = 10_000_000;

struct Cell {
    label: &'static str,
    fault: FaultConfig,
    /// Serve every read through mailbox fetching ([`AccessMode::Fetching`])
    /// so the one-sided pull path rides the same chaos as the ring.
    fetch: bool,
}

#[derive(Debug)]
struct CellResult {
    label: String,
    fault: FaultConfig,
    ops: usize,
    makespan: SimDuration,
    hist: LatencyHistogram,
    stats: ServiceStats,
    injected: FaultCounters,
    lost: usize,
    duplicated: usize,
    /// Mailbox slot leases still outstanding after the post-run grace
    /// period (every lease must be reclaimed — acked or TTL-swept).
    leaked_slots: usize,
    /// Every flight-recorder dump fired by any client connection.
    flight: Vec<FlightDump>,
    /// CRC failures observed on the *client* side only (the merged
    /// [`ServiceStats`] also fold in server-side failures, but only
    /// client-side ones fire a client flight dump).
    client_crc: u64,
}

fn unique_rect(op: u64) -> Rect {
    // A dense grid disjoint from itself (every op gets its own cell) but
    // freely overlapping the pre-loaded dataset — occurrence counting
    // keys on the unique id, not the rectangle.
    let x = (op % 997) as f64 / 997.0 * 0.9;
    let y = (op / 997) as f64 / 997.0 * 0.9;
    Rect::new(x, y, x + 0.0004, y + 0.0004)
}

fn dataset(n: usize) -> Vec<(Rect, u64)> {
    (0..n as u64)
        .map(|i| {
            let x = (i % 256) as f64 / 256.0;
            let y = (i / 256) as f64 / 256.0 % 1.0;
            (Rect::new(x, y, x + 0.003, y + 0.003), i)
        })
        .collect()
}

fn run_cell(cell: &Cell, args: &BenchArgs, size: usize, ops: usize) -> CellResult {
    let sim = Sim::new();
    let fault = cell.fault;
    let fetch = cell.fetch;
    let seed = args.seed;
    let timeout = SimDuration::from_micros(args.timeout_us.unwrap_or(500));
    let max_retries = args.max_retries.unwrap_or(64);
    let (makespan, hist, stats, injected, lost, duplicated, leaked, flight, client_crc) = sim
        .run_until(async move {
            let net = Network::new();
            let profile = infiniband_100g();
            let rkeys = RkeyAllocator::new();
            // Fast heartbeats so the staleness failsafe (k intervals of
            // silence) can trip inside a short chaos cell.
            let hb_interval = SimDuration::from_millis(1);
            let server = CatfishServer::build(
                &net,
                &profile,
                ServerConfig {
                    cores: 4,
                    mode: ServerMode::EventDriven,
                    heartbeat_interval: hb_interval,
                    ..ServerConfig::default()
                },
                RTreeConfig::with_max_entries(88),
                dataset(size),
                &rkeys,
            );
            let plan = fault.is_active().then(|| FaultPlan::new(fault, seed));
            if let Some(plan) = &plan {
                server.endpoint().set_fault_plan(Some(plan.clone()));
            }
            server.start_heartbeats();
            // Virtual-time watchdog: recovery must converge, not crawl.
            spawn(async {
                sleep(WATCHDOG).await;
                panic!("fault_sweep cell wedged: no convergence within {WATCHDOG}");
            });
            let started = now();
            let hist: Rc<RefCell<LatencyHistogram>> = Rc::default();
            let stats: Rc<RefCell<ServiceStats>> = Rc::default();
            let lost: Rc<RefCell<Vec<u64>>> = Rc::default();
            let dumps: Rc<RefCell<Vec<FlightDump>>> = Rc::default();
            let mut handles = Vec::new();
            for c in 0..CLIENTS {
                let ep = Endpoint::new(&net, net.add_node(profile.link), RdmaProfile::default());
                if let Some(plan) = &plan {
                    ep.set_fault_plan(Some(plan.clone()));
                }
                let ch = server.accept(&ep);
                let mut client = CatfishClient::new(
                    ch,
                    server.remote_handle(),
                    ClientConfig {
                        mode: if fetch {
                            AccessMode::Fetching
                        } else {
                            AccessMode::Adaptive(AdaptiveParams {
                                heartbeat_interval: hb_interval,
                                ..AdaptiveParams::default()
                            })
                        },
                        request_timeout: timeout,
                        max_retries,
                        ..ClientConfig::default()
                    },
                    seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                client.set_flight_ids(c as u32, 0);
                let hist = Rc::clone(&hist);
                let stats = Rc::clone(&stats);
                let lost = Rc::clone(&lost);
                let dumps = Rc::clone(&dumps);
                handles.push(spawn(async move {
                    sleep(SimDuration::from_nanos(13_007 * c as u64)).await;
                    for i in 0..ops as u64 {
                        let op = (c * ops) as u64 + i;
                        let id = ID_BASE + op;
                        let rect = unique_rect(op);
                        let t0 = now();
                        if !client.insert(rect, id).await {
                            lost.borrow_mut().push(id);
                        }
                        hist.borrow_mut().record(now() - t0);
                        // Every few inserts, read back an earlier one through
                        // the ring so the read path rides the same chaos.
                        if i % 8 == 7 {
                            let back = ID_BASE + (c * ops) as u64 + i / 2;
                            let q = unique_rect((c * ops) as u64 + i / 2);
                            let got = client.search(&q).await;
                            assert!(
                                got.contains(&back),
                                "cell read-back lost id {back} (client {c}, op {i})"
                            );
                        }
                    }
                    stats.borrow_mut().merge(&client.stats());
                    dumps.borrow_mut().extend(client.flight().dumps());
                }));
            }
            for h in handles {
                h.await;
            }
            let makespan = now() - started;
            // Slot-leak audit: give every outstanding lease time to be acked
            // or to age past the TTL, let heartbeat ticks run the reclaimer,
            // then demand the mailboxes are empty — a crash-restarted or
            // timed-out fetch must never strand a slot.
            sleep(ServerConfig::default().mailbox_lease_ttl + hb_interval * 4).await;
            let leaked = server.mailbox_outstanding();
            let mut st = stats.borrow().to_owned();
            let client_crc = st.checksum_failures;
            {
                let ss = server.stats();
                st.dup_drops += ss.dup_drops;
                st.checksum_failures += ss.checksum_failures;
                st.resyncs += ss.resyncs;
            }
            // Exactly-once audit over every op of every client.
            let mut lost = lost.borrow().to_owned();
            let mut duplicated = Vec::new();
            for op in 0..(CLIENTS * ops) as u64 {
                let id = ID_BASE + op;
                let hits = server.with_index(|t| {
                    t.search(&unique_rect(op))
                        .iter()
                        .filter(|d| **d == id)
                        .count()
                });
                match hits {
                    0 => lost.push(id),
                    1 => {}
                    _ => duplicated.push(id),
                }
            }
            lost.sort_unstable();
            lost.dedup();
            server.with_index(|t| t.check_invariants()).unwrap();
            let injected = plan.map(|p| p.counters()).unwrap_or_default();
            let hist = hist.borrow().to_owned();
            let flight = dumps.borrow().to_owned();
            (
                makespan,
                hist,
                st,
                injected,
                lost.len(),
                duplicated.len(),
                leaked,
                flight,
                client_crc,
            )
        });
    CellResult {
        label: cell.label.to_string(),
        fault: cell.fault,
        ops: CLIENTS * ops,
        makespan,
        hist,
        stats,
        injected,
        lost,
        duplicated,
        leaked_slots: leaked,
        flight,
        client_crc,
    }
}

/// The sharded variant of [`run_cell`]: a `shards`-way [`CatfishCluster`]
/// with the fault plan attached to **shard 0's NIC only** — the other
/// shards and every client NIC run clean. Inserts spread across the space
/// partition, so ops homed on shard 0 ride the chaos while the rest of
/// the cluster stays healthy; the exactly-once audit then counts each id
/// across *all* shards, so a retry mis-applied to a sibling shard would
/// show up as a duplicate.
fn run_cluster_cell(
    cell: &Cell,
    args: &BenchArgs,
    size: usize,
    ops: usize,
    shards: usize,
) -> CellResult {
    let sim = Sim::new();
    let fault = cell.fault;
    let fetch = cell.fetch;
    let seed = args.seed;
    let timeout = SimDuration::from_micros(args.timeout_us.unwrap_or(500));
    let max_retries = args.max_retries.unwrap_or(64);
    let (makespan, hist, stats, injected, lost, duplicated, leaked, flight, client_crc) = sim
        .run_until(async move {
            let net = Network::new();
            let profile = infiniband_100g();
            let rkeys = RkeyAllocator::new();
            let hb_interval = SimDuration::from_millis(1);
            let cluster = CatfishCluster::build(
                &net,
                &profile,
                ServerConfig {
                    cores: 4,
                    mode: ServerMode::EventDriven,
                    heartbeat_interval: hb_interval,
                    ..ServerConfig::default()
                },
                RTreeConfig::with_max_entries(88),
                dataset(size),
                shards,
                &rkeys,
            );
            let plan = fault.is_active().then(|| FaultPlan::new(fault, seed));
            if let Some(plan) = &plan {
                cluster
                    .shard(0)
                    .endpoint()
                    .set_fault_plan(Some(plan.clone()));
            }
            cluster.start_heartbeats();
            spawn(async {
                sleep(WATCHDOG).await;
                panic!("fault_sweep cluster cell wedged: no convergence within {WATCHDOG}");
            });
            let started = now();
            let hist: Rc<RefCell<LatencyHistogram>> = Rc::default();
            let stats: Rc<RefCell<ServiceStats>> = Rc::default();
            let lost: Rc<RefCell<Vec<u64>>> = Rc::default();
            let dumps: Rc<RefCell<Vec<FlightDump>>> = Rc::default();
            let mut handles = Vec::new();
            for c in 0..CLIENTS {
                let mut client = CatfishClusterClient::connect(
                    &cluster,
                    &net,
                    &profile,
                    ClientConfig {
                        mode: if fetch {
                            AccessMode::Fetching
                        } else {
                            AccessMode::Adaptive(AdaptiveParams {
                                heartbeat_interval: hb_interval,
                                ..AdaptiveParams::default()
                            })
                        },
                        request_timeout: timeout,
                        max_retries,
                        ..ClientConfig::default()
                    },
                    seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                client.set_flight_ids(c as u32);
                let hist = Rc::clone(&hist);
                let stats = Rc::clone(&stats);
                let lost = Rc::clone(&lost);
                let dumps = Rc::clone(&dumps);
                handles.push(spawn(async move {
                    sleep(SimDuration::from_nanos(13_007 * c as u64)).await;
                    for i in 0..ops as u64 {
                        let op = (c * ops) as u64 + i;
                        let id = ID_BASE + op;
                        let rect = unique_rect(op);
                        let t0 = now();
                        if !client.insert(rect, id).await {
                            lost.borrow_mut().push(id);
                        }
                        hist.borrow_mut().record(now() - t0);
                        if i % 8 == 7 {
                            let back = ID_BASE + (c * ops) as u64 + i / 2;
                            let q = unique_rect((c * ops) as u64 + i / 2);
                            let got = client.search(&q).await;
                            assert!(
                                got.contains(&back),
                                "cluster read-back lost id {back} (client {c}, op {i})"
                            );
                        }
                    }
                    stats.borrow_mut().merge(&client.stats());
                    dumps.borrow_mut().extend(client.flight_dumps());
                }));
            }
            for h in handles {
                h.await;
            }
            let makespan = now() - started;
            // Cluster-wide slot-leak audit (same grace period as the
            // single-server cell, summed over every shard's mailboxes).
            sleep(ServerConfig::default().mailbox_lease_ttl + hb_interval * 4).await;
            let leaked: usize = (0..cluster.shards())
                .map(|s| cluster.shard(s).mailbox_outstanding())
                .sum();
            let mut st = stats.borrow().to_owned();
            let client_crc = st.checksum_failures;
            {
                let ss = cluster.stats();
                st.dup_drops += ss.dup_drops;
                st.checksum_failures += ss.checksum_failures;
                st.resyncs += ss.resyncs;
            }
            // Exactly-once audit, cluster-wide: sum occurrences over shards.
            let mut lost = lost.borrow().to_owned();
            let mut duplicated = Vec::new();
            for op in 0..(CLIENTS * ops) as u64 {
                let id = ID_BASE + op;
                let q = unique_rect(op);
                let hits: usize = (0..cluster.shards())
                    .map(|s| {
                        cluster
                            .shard(s)
                            .with_index(|t| t.search(&q).iter().filter(|d| **d == id).count())
                    })
                    .sum();
                match hits {
                    0 => lost.push(id),
                    1 => {}
                    _ => duplicated.push(id),
                }
            }
            lost.sort_unstable();
            lost.dedup();
            for s in 0..cluster.shards() {
                cluster
                    .shard(s)
                    .with_index(|t| t.check_invariants())
                    .unwrap();
            }
            let injected = plan.map(|p| p.counters()).unwrap_or_default();
            let hist = hist.borrow().to_owned();
            let flight = dumps.borrow().to_owned();
            (
                makespan,
                hist,
                st,
                injected,
                lost.len(),
                duplicated.len(),
                leaked,
                flight,
                client_crc,
            )
        });
    CellResult {
        label: cell.label.to_string(),
        fault: cell.fault,
        ops: CLIENTS * ops,
        makespan,
        hist,
        stats,
        injected,
        lost,
        duplicated,
        leaked_slots: leaked,
        flight,
        client_crc,
    }
}

/// Flight-recorder smoke: every client-side timeout and CRC failure must
/// have produced an annotated dump, and once a connection has warmed up
/// (its event ring reached 32 entries — the ring never shrinks, so
/// per-connection history depth is monotone) every later dump must carry
/// that ≥32-event history. Returns (timeout_dumps, crc_dumps) for the
/// row and the JSON record.
fn check_flight(r: &CellResult) -> (u64, u64) {
    let timeout_dumps = r
        .flight
        .iter()
        .filter(|d| matches!(d.anomaly, Anomaly::Timeout { .. }))
        .count() as u64;
    let crc_dumps = r
        .flight
        .iter()
        .filter(|d| d.anomaly == Anomaly::ChecksumFailure)
        .count() as u64;
    // stats.flight_dumps counts every fired dump (including any dropped
    // past the retention cap); the per-anomaly equalities only hold when
    // nothing was dropped — always the case at sweep scale.
    if r.stats.flight_dumps == r.flight.len() as u64 {
        assert_eq!(
            timeout_dumps, r.stats.timeouts,
            "{}: {} timeouts but {} timeout flight dumps",
            r.label, r.stats.timeouts, timeout_dumps
        );
        assert_eq!(
            crc_dumps, r.client_crc,
            "{}: {} client CRC failures but {} checksum flight dumps",
            r.label, r.client_crc, crc_dumps
        );
    }
    let mut warm: std::collections::HashMap<(u32, u32), bool> = std::collections::HashMap::new();
    for d in &r.flight {
        let w = warm.entry((d.client, d.shard)).or_insert(false);
        if *w {
            assert!(
                d.history.len() >= 32,
                "{}: dump on warm connection ({}, {}) carries only {} events of history",
                r.label,
                d.client,
                d.shard,
                d.history.len()
            );
        }
        *w |= d.history.len() >= 32;
    }
    // A chaos cell with sustained traffic must produce at least one
    // deep-history dump — otherwise the ring is being cleared somewhere.
    if r.stats.timeouts > 16 {
        assert!(
            warm.values().any(|&w| w),
            "{}: {} timeouts yet no flight dump reached 32 events of history",
            r.label,
            r.stats.timeouts
        );
    }
    (timeout_dumps, crc_dumps)
}

fn json_cell(r: &CellResult) -> String {
    let s = r.hist.summary();
    let us = |d: SimDuration| d.as_nanos() as f64 / 1e3;
    format!(
        concat!(
            "{{\"label\":\"{}\",\"loss\":{},\"hb_drop\":{},\"stall\":{},\"corrupt\":{},",
            "\"dupe\":{},\"delay\":{},\"ops\":{},\"makespan_ms\":{:.3},",
            "\"mean_us\":{:.3},\"p50_us\":{:.3},\"p99_us\":{:.3},",
            "\"timeouts\":{},\"retransmits\":{},\"dup_drops\":{},",
            "\"checksum_failures\":{},\"resyncs\":{},\"stale_heartbeat_windows\":{},",
            "\"injected\":{{\"writes_dropped\":{},\"completions_duplicated\":{},",
            "\"writes_delayed\":{},\"frames_corrupted\":{},\"heartbeats_suppressed\":{},",
            "\"stalls\":{}}},\"fetched_reads\":{},\"fetch_fallbacks\":{},",
            "\"leaked_slots\":{},\"lost\":{},\"duplicated\":{},\"exactly_once\":{},",
            "\"flight_dumps\":{},\"timeout_dumps\":{},\"checksum_dumps\":{}}}"
        ),
        r.label,
        r.fault.drop_write,
        r.fault.suppress_heartbeat,
        r.fault.stall,
        r.fault.corrupt,
        r.fault.duplicate,
        r.fault.delay,
        r.ops,
        r.makespan.as_nanos() as f64 / 1e6,
        us(s.mean),
        us(s.p50),
        us(s.p99),
        r.stats.timeouts,
        r.stats.retransmits,
        r.stats.dup_drops,
        r.stats.checksum_failures,
        r.stats.resyncs,
        r.stats.stale_heartbeat_windows,
        r.injected.writes_dropped,
        r.injected.completions_duplicated,
        r.injected.writes_delayed,
        r.injected.frames_corrupted,
        r.injected.heartbeats_suppressed,
        r.injected.stalls,
        r.stats.fetched_reads,
        r.stats.fetch_fallbacks,
        r.leaked_slots,
        r.lost,
        r.duplicated,
        r.lost == 0 && r.duplicated == 0 && r.leaked_slots == 0,
        r.stats.flight_dumps,
        r.flight
            .iter()
            .filter(|d| matches!(d.anomaly, Anomaly::Timeout { .. }))
            .count(),
        r.flight
            .iter()
            .filter(|d| d.anomaly == Anomaly::ChecksumFailure)
            .count(),
    )
}

fn main() {
    let args = BenchArgs::parse();
    let shards = args.shards.as_ref().map_or(1, |v| v[0]);
    banner(
        "Fault sweep",
        "exactly-once under injected loss, stalls, and heartbeat suppression",
    );
    // Chaos cells are dominated by timeout recovery, not index scale;
    // a moderate tree keeps the sweep fast without weakening the check.
    let size = if args.paper {
        args.size
    } else {
        args.size.min(50_000)
    };
    let ops = if args.paper {
        args.requests
    } else {
        args.requests.min(150)
    };
    println!(
        "dataset {size} rects, {shards} shard(s), {CLIENTS} clients x {ops} inserts, timeout {} us, retries {}{}",
        args.timeout_us.unwrap_or(500),
        args.max_retries.unwrap_or(64),
        if shards > 1 {
            " (faults on shard 0 only)"
        } else {
            ""
        },
    );

    let mut cells = vec![
        Cell {
            label: "baseline",
            fault: FaultConfig::off(),
            fetch: false,
        },
        Cell {
            label: "loss_1pct",
            fetch: false,
            fault: FaultConfig {
                drop_write: 0.01,
                ..FaultConfig::off()
            },
        },
        Cell {
            label: "loss_5pct",
            fetch: false,
            fault: FaultConfig {
                drop_write: 0.05,
                ..FaultConfig::off()
            },
        },
        Cell {
            label: "loss_10pct",
            fetch: false,
            fault: FaultConfig {
                drop_write: 0.10,
                ..FaultConfig::off()
            },
        },
        Cell {
            label: "loss5_hb90",
            fetch: false,
            fault: FaultConfig {
                drop_write: 0.05,
                suppress_heartbeat: 0.9,
                ..FaultConfig::off()
            },
        },
        Cell {
            label: "chaos_mix",
            fault: FaultConfig {
                drop_write: 0.05,
                suppress_heartbeat: 0.9,
                stall: 0.01,
                corrupt: 0.02,
                duplicate: 0.02,
                delay: 0.05,
                ..FaultConfig::off()
            },
            fetch: false,
        },
        // The same chaos mix with every read pulled through the mailbox:
        // exactly-once and the slot-leak audit must hold on the fetch
        // transport too.
        Cell {
            label: "chaos_fetch",
            fault: FaultConfig {
                drop_write: 0.05,
                suppress_heartbeat: 0.9,
                stall: 0.01,
                corrupt: 0.02,
                duplicate: 0.02,
                delay: 0.05,
                ..FaultConfig::off()
            },
            fetch: true,
        },
        // Clean-fabric fetch cell: isolates the mailbox protocol itself.
        Cell {
            label: "fetch_clean",
            fault: FaultConfig::off(),
            fetch: true,
        },
    ];
    // Explicit knobs replace the built-in sweep with one custom cell.
    if args.loss > 0.0 || args.stall > 0.0 || args.hb_drop > 0.0 {
        cells = vec![Cell {
            label: "custom",
            fault: FaultConfig {
                drop_write: args.loss,
                stall: args.stall,
                suppress_heartbeat: args.hb_drop,
                ..FaultConfig::off()
            },
            fetch: false,
        }];
    }

    let mut results = Vec::new();
    for cell in &cells {
        let r = timed(cell.label, || {
            if shards > 1 {
                run_cluster_cell(cell, &args, size, ops, shards)
            } else {
                run_cell(cell, &args, size, ops)
            }
        });
        let s = r.hist.summary();
        let (timeout_dumps, crc_dumps) = check_flight(&r);
        println!(
            "{:<12} p50 {:>10} p99 {:>10}  timeouts {:>5}  retransmits {:>5}  dup_drops {:>4}  crc {:>4}  resyncs {:>4}  stale_hb {:>3}  fetched {:>5}  dumps {:>5} (t{} c{})  lost {} dup {} leaked {}",
            r.label,
            s.p50.to_string(),
            s.p99.to_string(),
            r.stats.timeouts,
            r.stats.retransmits,
            r.stats.dup_drops,
            r.stats.checksum_failures,
            r.stats.resyncs,
            r.stats.stale_heartbeat_windows,
            r.stats.fetched_reads,
            r.stats.flight_dumps,
            timeout_dumps,
            crc_dumps,
            r.lost,
            r.duplicated,
            r.leaked_slots,
        );
        assert!(
            r.stats.retransmits <= r.stats.timeouts,
            "{}: every retransmission follows a timeout ({} > {})",
            r.label,
            r.stats.retransmits,
            r.stats.timeouts
        );
        assert_eq!(r.lost, 0, "{}: {} operations lost", r.label, r.lost);
        assert_eq!(
            r.duplicated, 0,
            "{}: {} operations applied twice",
            r.label, r.duplicated
        );
        assert_eq!(
            r.leaked_slots, 0,
            "{}: {} mailbox slots leaked",
            r.label, r.leaked_slots
        );
        results.push(r);
    }

    let body = format!(
        "{{\"harness\":\"fault_sweep\",\"clients\":{CLIENTS},\"shards\":{shards},\"ops_per_client\":{ops},\"dataset\":{size},\"seed\":{},\"cells\":[\n{}\n]}}\n",
        args.seed,
        results
            .iter()
            .map(json_cell)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let out = args
        .metrics_out
        .clone()
        .map(|b| format!("{b}.json"))
        .unwrap_or_else(|| "BENCH_faults.json".to_string());
    std::fs::write(&out, body).expect("write fault sweep results");
    println!("all cells exactly-once: wrote {out}");
}
