//! Figure 7 — polling-based vs event-based fast messaging under CPU
//! oversubscription (clients ≫ cores), on the InfiniBand profile.
//!
//! Polling workers burn a full scheduling quantum per turn whether or not
//! work arrived, so once connections outnumber cores, request latency
//! grows superlinearly; event-driven workers block on the completion
//! channel and scale linearly.

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::config::{Scheme, ServerMode};
use catfish_core::harness::{run_experiment, ExperimentSpec};
use catfish_rdma::profile;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Fig. 7",
        "polling vs event-based fast messaging: latency (a) and throughput (b)",
    );
    let dataset = uniform_rects(args.size, 1e-4, args.seed);
    let clients = args
        .clients
        .clone()
        .unwrap_or_else(|| vec![80, 160, 240, 320]);
    for (label, scale) in [
        ("scale 0.00001", ScaleDist::small()),
        ("scale 0.01", ScaleDist::large()),
    ] {
        println!("\n--- {label} ---");
        println!(
            "{:>8} {:>13} {:>13} {:>13} {:>13} {:>11} {:>11}",
            "clients",
            "poll mean",
            "event mean",
            "poll p99",
            "event p99",
            "poll Kops",
            "event Kops"
        );
        for &n in &clients {
            let mut results = Vec::new();
            for mode in [ServerMode::Polling, ServerMode::EventDriven] {
                let mut spec = ExperimentSpec {
                    profile: profile::infiniband_100g(),
                    scheme: Scheme::FastMessaging,
                    server_mode: Some(mode),
                    // FaRM-style polling polls on BOTH sides: the client
                    // machines (28 cores each) also burn cores detecting
                    // responses. Event-driven clients block instead.
                    client_polling_cores: (mode == ServerMode::Polling).then_some(28),
                    clients: n,
                    client_nodes: 8,
                    dataset: dataset.clone(),
                    trace: TraceSpec::search_only(scale, args.requests),
                    tree_config: paper_tree_config(),
                    seed: args.seed,
                    ..ExperimentSpec::default()
                };
                args.apply_faults(&mut spec);
                results.push(timed(&format!("{label} {mode:?} n={n}"), || {
                    run_experiment(&spec)
                }));
            }
            println!(
                "{:>8} {:>13} {:>13} {:>13} {:>13} {:>11.1} {:>11.1}",
                n,
                results[0].latency.mean.to_string(),
                results[1].latency.mean.to_string(),
                results[0].latency.p99.to_string(),
                results[1].latency.p99.to_string(),
                results[0].throughput_kops,
                results[1].throughput_kops
            );
        }
    }
}
