//! Beyond the paper (§VI): the key-value service on the same Catfish
//! machinery. Compares fast messaging, offloaded gets, and the adaptive
//! policy for point lookups across client counts. (Key popularity is
//! irrelevant in this cost model — every B+-tree lookup walks the same
//! height — so keys are drawn uniformly; the Zipfian sampler exists in
//! `catfish-workload` for cache-sensitive extensions.)

use std::cell::RefCell;
use std::rc::Rc;

use catfish_bench::{banner, timed, BenchArgs};
use catfish_bplus::BpConfig;
use catfish_core::config::{AccessMode, AdaptiveParams, ClientConfig, ServerConfig, ServerMode};
use catfish_core::conn::RkeyAllocator;
use catfish_core::kv::{KvClient, KvServer};
use catfish_core::LatencyHistogram;
use catfish_rdma::{profile, Endpoint, RdmaProfile};
use catfish_simnet::{now, sleep, spawn, Network, Sim, SimDuration};
use catfish_workload::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "KV service (§VI)",
        "B+-tree gets over the Catfish framework: fast / offload / adaptive",
    );
    let keys = (args.size / 2).max(10_000);
    println!(
        "{} keys, {} gets/client, 28-core server\n",
        keys, args.requests
    );
    let clients_sweep = args.clients.clone().unwrap_or_else(|| vec![32, 128, 256]);
    let mut slo_ok = true;
    for clients in clients_sweep {
        println!("--- {clients} clients ---");
        for (label, mode) in [
            ("fast messaging", AccessMode::FastMessaging),
            ("offloading", AccessMode::Offloading),
            (
                "adaptive (Catfish)",
                AccessMode::Adaptive(AdaptiveParams::default()),
            ),
        ] {
            let r = timed(&format!("n={clients} {label}"), || {
                run_cell(keys as u64, clients, args.requests, mode, args.seed)
            });
            let summary = r.hist.summary();
            println!(
                "{:<20} {:>9.1} Kops  mean {:>10}  p99 {:>10}  [fast {} / offload {}]",
                label, r.kops, summary.mean, summary.p99, r.fast, r.offloaded
            );
            // The declared objectives gate every cell: a regression in any
            // transport mode trips CI, not just the adaptive headline.
            slo_ok &= args.check_slo_parts(&r.hist, r.kops, 0, summary.count as u64);
        }
        println!();
    }
    if !slo_ok {
        eprintln!("SLO violated — see burn rates above");
        std::process::exit(1);
    }
}

/// One cell's outcome.
struct Cell {
    kops: f64,
    hist: LatencyHistogram,
    fast: u64,
    offloaded: u64,
}

fn run_cell(keys: u64, clients: usize, requests: usize, mode: AccessMode, seed: u64) -> Cell {
    let sim = Sim::new();
    sim.run_until(async move {
        let net = Network::new();
        let prof = profile::infiniband_100g();
        let rkeys = RkeyAllocator::new();
        let server = KvServer::build(
            &net,
            &prof,
            ServerConfig {
                mode: ServerMode::EventDriven,
                ..ServerConfig::default()
            },
            BpConfig::default(),
            (0..keys).map(|k| (k, k * 2)).collect(),
            &rkeys,
        );
        if matches!(mode, AccessMode::Adaptive(_)) {
            server.start_heartbeats();
        }
        let eps: Vec<Endpoint> = (0..8)
            .map(|_| Endpoint::new(&net, net.add_node(prof.link), RdmaProfile::default()))
            .collect();
        let sampler = Rc::new(ZipfSampler::new(keys, 0.99));
        let stats = Rc::new(RefCell::new((
            LatencyHistogram::new(),
            0u64, // fast
            0u64, // offload
        )));
        let started = now();
        let mut handles = Vec::new();
        for c in 0..clients {
            let ch = server.accept(&eps[c % 8]);
            let mut client = KvClient::new(
                ch,
                server.remote_handle(),
                ClientConfig {
                    mode,
                    ..ClientConfig::default()
                },
                seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let sampler = Rc::clone(&sampler);
            let stats = Rc::clone(&stats);
            handles.push(spawn(async move {
                sleep(SimDuration::from_nanos(17_039 * c as u64)).await;
                let mut rng = StdRng::seed_from_u64(seed ^ c as u64);
                let mut rec = LatencyHistogram::new();
                for _ in 0..requests {
                    let key = rng.gen::<u64>() % sampler.n();
                    let t0 = now();
                    let got = client.get(key).await;
                    debug_assert_eq!(got, Some(key * 2));
                    rec.record(now() - t0);
                }
                let mut s = stats.borrow_mut();
                s.0.merge(&rec);
                s.1 += client.stats().fast_reads;
                s.2 += client.stats().offloaded_reads;
            }));
        }
        for h in handles {
            h.await;
        }
        let makespan = now() - started;
        let s = stats.borrow();
        let kops = s.0.len() as f64 / makespan.as_secs_f64() / 1e3;
        Cell {
            kops,
            hist: s.0.clone(),
            fast: s.1,
            offloaded: s.2,
        }
    })
}
