//! Figures 10 & 11 — throughput and latency of 100 %-search workloads.
//!
//! Sweeps client counts for the five schemes at each of the paper's three
//! request scales (1e-5 CPU-bound, 1e-2 bandwidth-bound, power law).
//! Prints one table per scale with both metrics — Fig. 10 is the
//! throughput column, Fig. 11 the latency column.

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::config::Scheme;
use catfish_core::harness::{run_experiment, ExperimentSpec};
use catfish_rdma::profile;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Fig. 10 / Fig. 11",
        "search-only throughput (Kops) and latency vs client count",
    );
    let dataset = uniform_rects(args.size, 1e-4, args.seed);
    let clients = args
        .clients
        .clone()
        .unwrap_or_else(|| vec![32, 64, 128, 256]);
    let scales = [
        ("scale 0.00001 (CPU-bound)", ScaleDist::small()),
        ("scale 0.01 (bandwidth-bound)", ScaleDist::large()),
        ("power law", ScaleDist::power_law()),
    ];
    let schemes: [(Scheme, catfish_rdma::NetProfile); 5] = [
        (Scheme::TcpIp, profile::ethernet_1g()),
        (Scheme::TcpIp, profile::ethernet_40g()),
        (Scheme::FastMessaging, profile::infiniband_100g()),
        (Scheme::RdmaOffloading, profile::infiniband_100g()),
        (Scheme::Catfish, profile::infiniband_100g()),
    ];

    for (scale_label, scale) in scales {
        println!("\n--- {scale_label} ---");
        for &n in &clients {
            for (scheme, prof) in &schemes {
                let mut spec = ExperimentSpec {
                    profile: *prof,
                    scheme: *scheme,
                    clients: n,
                    client_nodes: 8,
                    dataset: dataset.clone(),
                    trace: TraceSpec::search_only(scale, args.requests),
                    tree_config: paper_tree_config(),
                    seed: args.seed,
                    ..ExperimentSpec::default()
                };
                args.apply_faults(&mut spec);
                let label = format!("{} n={}", scheme.label(prof), n);
                let r = timed(&label, || run_experiment(&spec));
                println!("{}  [{}]", r.row(), r.stats);
            }
            println!();
        }
    }
}
