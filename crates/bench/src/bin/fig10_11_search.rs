//! Figures 10 & 11 — throughput and latency of 100 %-search workloads.
//!
//! Sweeps client counts for the five schemes at each of the paper's three
//! request scales (1e-5 CPU-bound, 1e-2 bandwidth-bound, power law).
//! Prints one table per scale with both metrics — Fig. 10 is the
//! throughput column, Fig. 11 the latency column.
//!
//! With `--trace-out BASE` the Catfish cells run with distributed request
//! tracing on and the last one's trace is exported (`BASE.spans.jsonl` +
//! `BASE.trace.json` — inspect with `trace_tool`). With `--slo SPEC`
//! every Catfish cell is gated against the declared objectives and the
//! binary exits nonzero on violation.

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::config::Scheme;
use catfish_core::harness::{run_experiment, ExperimentSpec, RunResult};
use catfish_rdma::profile;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Fig. 10 / Fig. 11",
        "search-only throughput (Kops) and latency vs client count",
    );
    let dataset = uniform_rects(args.size, 1e-4, args.seed);
    let clients = args
        .clients
        .clone()
        .unwrap_or_else(|| vec![32, 64, 128, 256]);
    let scales = [
        ("scale 0.00001 (CPU-bound)", ScaleDist::small()),
        ("scale 0.01 (bandwidth-bound)", ScaleDist::large()),
        ("power law", ScaleDist::power_law()),
    ];
    let schemes: [(Scheme, catfish_rdma::NetProfile); 5] = [
        (Scheme::TcpIp, profile::ethernet_1g()),
        (Scheme::TcpIp, profile::ethernet_40g()),
        (Scheme::FastMessaging, profile::infiniband_100g()),
        (Scheme::RdmaOffloading, profile::infiniband_100g()),
        (Scheme::Catfish, profile::infiniband_100g()),
    ];

    let mut slo_ok = true;
    let mut last_traced: Option<RunResult> = None;
    for (scale_label, scale) in scales {
        println!("\n--- {scale_label} ---");
        for &n in &clients {
            for (scheme, prof) in &schemes {
                let mut spec = ExperimentSpec {
                    profile: *prof,
                    scheme: *scheme,
                    clients: n,
                    client_nodes: 8,
                    dataset: dataset.clone(),
                    trace: TraceSpec::search_only(scale, args.requests),
                    tree_config: paper_tree_config(),
                    seed: args.seed,
                    ..ExperimentSpec::default()
                };
                args.apply_faults(&mut spec);
                if *scheme == Scheme::Catfish {
                    args.apply_tracing(&mut spec);
                }
                let label = format!("{} n={}", scheme.label(prof), n);
                let r = timed(&label, || run_experiment(&spec));
                println!("{}  [{}]", r.row(), r.stats);
                if *scheme == Scheme::Catfish {
                    slo_ok &= args.check_slo(&r);
                    if spec.collect_spans {
                        last_traced = Some(r);
                    }
                }
            }
            println!();
        }
    }
    if let Some(r) = &last_traced {
        args.write_trace(r);
    }
    if !slo_ok {
        eprintln!("SLO violated on a Catfish cell — see burn rates above");
        std::process::exit(1);
    }
}
