//! RFP-style crossover: write-back vs. mailbox fetching vs. three-way
//! adaptive, swept over the query window scale (and hence the response
//! size in items).
//!
//! Remote result fetching trades the server's NIC-initiated response
//! Write (fixed post cost plus a per-KiB segmentation cost) for a cheap
//! local deposit plus client-issued one-sided Reads. Small responses
//! favor write-back — the deposit's fixed cost and the client's poll
//! RTTs dominate; large window results favor fetching — the server sheds
//! the per-KiB post cost and the response bytes move on the clients'
//! initiative. Somewhere in between the two curves cross; this harness
//! measures that crossover and checks the three-way adaptive policy
//! (Algorithm 1 generalized over fast / fetch / offload) tracks the best
//! static choice in **every** cell.
//!
//! Emits `BENCH_rfp.json`: per-cell throughput for the three modes, the
//! measured mean result size, per-mode phase histograms (when the `trace`
//! feature is compiled in), and the interpolated crossover point in
//! items. Self-asserting:
//!
//! * the smallest cell: write-back strictly beats static fetching;
//! * the largest cell: static fetching beats write-back by >= 15% Kops;
//! * every cell: three-way adaptive within 10% of the best static mode.

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::config::{AccessMode, AdaptiveParams, ClientConfig, Scheme, ServerConfig};
use catfish_core::harness::{run_experiment, ExperimentSpec, RunResult};
use catfish_rtree::{bulk_load, MemStore, Rect};
use catfish_workload::{uniform_rects, Request, ScaleDist, TraceSpec};

/// Window scales swept, chosen so the expected result size spans from a
/// handful of items to several thousand (the cost-model crossover sits
/// near `(deposit - post) / ((post_per_kb - deposit_per_kb) * item_kb)`
/// ≈ 73 items with the default [`catfish_core::config::CostModel`]).
/// The top scale matters: tree traversal (`node_visit`) dominates per-op
/// CPU until windows are large enough that interior leaves are fully
/// covered (items per node visited approaches the leaf fanout), which is
/// where shedding the per-KiB post cost shows up as throughput.
const SCALES: [f64; 6] = [0.004, 0.012, 0.03, 0.06, 0.12, 0.4];

/// One mode's outcome in one window-scale cell.
struct ModeOut {
    name: &'static str,
    result: RunResult,
}

struct CellOut {
    scale: f64,
    /// Mean result size over the actual client-0 trace, measured against
    /// a locally bulk-loaded copy of the dataset.
    items_mean: f64,
    modes: Vec<ModeOut>,
}

fn mode_config(name: &str, server: &ServerConfig) -> ClientConfig {
    match name {
        "write_back" => ClientConfig {
            mode: AccessMode::FastMessaging,
            ..ClientConfig::default()
        },
        "fetch" => ClientConfig {
            mode: AccessMode::Fetching,
            ..ClientConfig::default()
        },
        "adaptive" => ClientConfig {
            mode: AccessMode::Adaptive(AdaptiveParams {
                heartbeat_interval: server.heartbeat_interval,
                ..AdaptiveParams::three_way()
            }),
            multi_issue: true,
            ..ClientConfig::default()
        },
        other => panic!("unknown mode {other}"),
    }
}

fn run_cell(
    args: &BenchArgs,
    dataset: &[(Rect, u64)],
    clients: usize,
    requests: usize,
    scale: f64,
) -> CellOut {
    let server = ServerConfig {
        cores: 4,
        // Slots sized for the largest *tail* window, not the mean:
        // `ScaleDist::Fixed` draws edges uniform in (0, bound], so the
        // top scale's biggest windows return ~16k items (~640 KiB
        // encoded). Static fetching must never overflow into ring
        // write-back here, or the fallback ops — exactly the largest
        // responses — pay write-back prices and flatten the crossover.
        // Fewer, bigger slots: single-issue clients reuse a slot only
        // after slots further acks, far beyond a heartbeat reclaim tick.
        mailbox_slots: 4,
        mailbox_slot_bytes: 768 * 1024,
        ..ServerConfig::default()
    };
    let trace = TraceSpec::search_only(ScaleDist::Fixed { bound: scale }, requests);

    // Measured (not modeled) result size: replay client 0's actual trace
    // against a local bulk-load of the same dataset.
    let tree = bulk_load(MemStore::new(), paper_tree_config(), dataset.to_vec());
    let probe = trace.client_trace(0, args.seed);
    let mut hits = 0usize;
    let mut searches = 0usize;
    for req in &probe {
        if let Request::Search(rect) = req {
            hits += tree.search(rect).len();
            searches += 1;
        }
    }
    let items_mean = hits as f64 / searches.max(1) as f64;

    let modes = ["write_back", "fetch", "adaptive"]
        .into_iter()
        .map(|name| {
            let spec = ExperimentSpec {
                scheme: Scheme::Catfish,
                clients,
                client_nodes: 8,
                dataset: dataset.to_vec(),
                trace,
                server,
                tree_config: paper_tree_config(),
                seed: args.seed,
                client_config: Some(mode_config(name, &server)),
                collect_phase_spans: true,
                ..ExperimentSpec::default()
            };
            let result = timed(&format!("scale {scale} {name}"), || run_experiment(&spec));
            ModeOut { name, result }
        })
        .collect();
    CellOut {
        scale,
        items_mean,
        modes,
    }
}

fn json_mode(m: &ModeOut) -> String {
    let r = &m.result;
    let s = &r.latency;
    let us = |d: catfish_simnet::SimDuration| d.as_nanos() as f64 / 1e3;
    let phases = r
        .phase_hists
        .iter()
        .map(|(p, h)| {
            let ps = h.summary();
            format!(
                "{{\"phase\":\"{}\",\"count\":{},\"p50_us\":{:.3},\"p99_us\":{:.3}}}",
                p.name(),
                h.len(),
                us(ps.p50),
                us(ps.p99)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        concat!(
            "\"{}\":{{\"kops\":{:.3},\"mean_us\":{:.3},\"p99_us\":{:.3},",
            "\"fast_reads\":{},\"fetched_reads\":{},\"offloaded_reads\":{},",
            "\"fetched_responses\":{},\"fetch_fallbacks\":{},\"dominant\":\"{}\",",
            "\"server_cpu\":{:.4},\"phases\":[{}]}}"
        ),
        m.name,
        r.throughput_kops,
        us(s.mean),
        us(s.p99),
        r.stats.fast_reads,
        r.stats.fetched_reads,
        r.stats.offloaded_reads,
        r.stats.fetched_responses,
        r.stats.fetch_fallbacks,
        r.stats.dominant_transport(),
        r.server_cpu,
        phases,
    )
}

fn kops(cell: &CellOut, name: &str) -> f64 {
    cell.modes
        .iter()
        .find(|m| m.name == name)
        .map(|m| m.result.throughput_kops)
        .unwrap()
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "RFP crossover",
        "write-back vs. mailbox fetching vs. three-way adaptive, by window scale",
    );
    let clients = args.clients.as_ref().map_or(64, |v| v[0]);
    let size = if args.paper {
        args.size
    } else {
        args.size.min(100_000)
    };
    let requests = if args.paper {
        args.requests
    } else {
        args.requests.min(40)
    };
    // Small dataset rectangles (edges in (0, 1e-3]) keep the result size
    // driven by the query window, not the data.
    let dataset = uniform_rects(size, 1e-3, args.seed);
    println!("dataset {size} rects, {clients} clients x {requests} searches, scales {SCALES:?}");

    let cells: Vec<CellOut> = SCALES
        .iter()
        .map(|&scale| run_cell(&args, &dataset, clients, requests, scale))
        .collect();

    println!();
    for c in &cells {
        let wb = kops(c, "write_back");
        let fe = kops(c, "fetch");
        let ad = kops(c, "adaptive");
        let cpu = |name: &str| {
            c.modes
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.result.server_cpu * 100.0)
                .unwrap()
        };
        println!(
            "scale {:>6.3} (~{:>6.1} items)  write-back {:>8.2} Kops (cpu {:>5.1}%)  fetch {:>8.2} Kops (cpu {:>5.1}%)  adaptive {:>8.2} Kops  ({})",
            c.scale,
            c.items_mean,
            wb,
            cpu("write_back"),
            fe,
            cpu("fetch"),
            ad,
            if fe > wb { "fetch wins" } else { "write-back wins" },
        );
    }

    // The interpolated crossover: the result size at which the fetch and
    // write-back curves cross, linear in (items, fetch - write_back).
    let mut crossover_items = None;
    for w in cells.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let ga = kops(a, "fetch") - kops(a, "write_back");
        let gb = kops(b, "fetch") - kops(b, "write_back");
        if ga < 0.0 && gb >= 0.0 {
            let t = ga / (ga - gb);
            crossover_items = Some(a.items_mean + t * (b.items_mean - a.items_mean));
            break;
        }
    }

    // The JSON artifact is written *before* the self-checks so a failing
    // gate still leaves the full per-cell data on disk for post-mortem.
    let crossover_json = crossover_items.map_or("null".to_string(), |c| format!("{c:.1}"));
    let body = format!(
        "{{\"harness\":\"rfp_crossover\",\"clients\":{clients},\"requests\":{requests},\"dataset\":{size},\"seed\":{},\"crossover_items\":{crossover_json},\"cells\":[\n{}\n]}}\n",
        args.seed,
        cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"scale\":{},\"items_mean\":{:.2},{}}}",
                    c.scale,
                    c.items_mean,
                    c.modes.iter().map(json_mode).collect::<Vec<_>>().join(","),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let out = args
        .metrics_out
        .clone()
        .map(|b| format!("{b}.json"))
        .unwrap_or_else(|| "BENCH_rfp.json".to_string());
    std::fs::write(&out, body).expect("write rfp crossover results");

    // --- Self-checks (the acceptance contract) ---
    let first = &cells[0];
    assert!(
        kops(first, "write_back") > kops(first, "fetch"),
        "small results must favor write-back: {:.2} vs {:.2} Kops",
        kops(first, "write_back"),
        kops(first, "fetch"),
    );
    let last = cells.last().unwrap();
    assert!(
        kops(last, "fetch") >= 1.15 * kops(last, "write_back"),
        "large window results must favor fetching by >= 15%: {:.2} vs {:.2} Kops",
        kops(last, "fetch"),
        kops(last, "write_back"),
    );
    for c in &cells {
        let best = kops(c, "write_back").max(kops(c, "fetch"));
        assert!(
            kops(c, "adaptive") >= 0.9 * best,
            "scale {}: three-way adaptive {:.2} Kops trails best static {:.2} by > 10%",
            c.scale,
            kops(c, "adaptive"),
            best,
        );
    }
    let crossover_items =
        crossover_items.expect("the fetch and write-back curves must cross inside the sweep");
    println!("\nmeasured crossover: ~{crossover_items:.0} items per response");
    println!("crossover reproduced: wrote {out}");
}
