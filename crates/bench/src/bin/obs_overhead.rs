//! Observability overhead check: runs the same experiment with phase-span
//! collection off and then on, asserting the simulated results are
//! unchanged (spans record virtual time without advancing it, so tracing
//! must never perturb what is being measured) and reporting the wall-clock
//! cost of recording. Built with `--no-default-features`, every span call
//! site compiles to a no-op and the traced run is byte-for-byte the same
//! code path — the second half of the tentpole's zero-cost claim.
//!
//! A transport matrix then repeats the off/on comparison for distributed
//! request tracing (`collect_spans`) across every response transport —
//! fast-messaging write-back under both event-driven and adaptive-spin
//! servers, mailbox fetching, and offloaded reads — gating each cell at
//! < 1% simulated-throughput delta: the trace context rides the wire, so
//! this is the check that carrying it is free on every path.
//!
//! Also prints the per-phase latency breakdown from a single-client run
//! and checks that the request-path phases (ring enqueue, server queue,
//! dispatch, index execution, response transit) sum to within 5% of the
//! end-to-end p50 — the phases partition the request path rather than
//! merely sampling it.

use catfish_bench::{banner, paper_tree_config, write_metrics, BenchArgs};
use catfish_core::config::{AccessMode, ClientConfig, Scheme, ServerMode};
use catfish_core::harness::{run_experiment, ExperimentSpec, RunResult};
use catfish_core::{Phase, TraceAssembler, TraceSink};
use catfish_rdma::profile;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};
use std::time::Instant;

/// Max tolerated change in simulated throughput when tracing is enabled.
const SIM_DELTA_PCT: f64 = 5.0;
/// Max tolerated gap between the phase-sum and the end-to-end p50.
const SUM_DELTA_PCT: f64 = 5.0;
/// Max tolerated simulated-throughput delta per transport-matrix cell
/// with distributed request tracing on.
const SPAN_DELTA_PCT: f64 = 1.0;

fn spec(args: &BenchArgs, scheme: Scheme, clients: usize, spans: bool) -> ExperimentSpec {
    let mut spec = ExperimentSpec {
        profile: profile::infiniband_100g(),
        scheme,
        clients,
        client_nodes: 8.min(clients),
        dataset: uniform_rects(args.size, 1e-4, args.seed),
        trace: TraceSpec::search_only(ScaleDist::small(), args.requests),
        tree_config: paper_tree_config(),
        seed: args.seed,
        collect_phase_spans: spans,
        ..ExperimentSpec::default()
    };
    args.apply_faults(&mut spec);
    spec
}

/// The transport matrix: every way a response can travel, each compared
/// trace-off vs trace-on.
fn matrix_cells(args: &BenchArgs, clients: usize) -> Vec<(&'static str, ExperimentSpec)> {
    let mut cells = Vec::new();
    for (label, mode, server_mode) in [
        (
            "write-back/event",
            AccessMode::FastMessaging,
            ServerMode::EventDriven,
        ),
        (
            "write-back/adaptive-spin",
            AccessMode::FastMessaging,
            ServerMode::AdaptiveSpin,
        ),
        ("fetch/event", AccessMode::Fetching, ServerMode::EventDriven),
        (
            "offload/event",
            AccessMode::Offloading,
            ServerMode::EventDriven,
        ),
    ] {
        let mut s = spec(args, Scheme::Catfish, clients, false);
        s.client_config = Some(ClientConfig {
            mode,
            multi_issue: matches!(mode, AccessMode::Offloading),
            ..ClientConfig::default()
        });
        s.server_mode = Some(server_mode);
        cells.push((label, s));
    }
    cells
}

fn timed_run(s: &ExperimentSpec) -> (RunResult, f64) {
    let start = Instant::now();
    let r = run_experiment(s);
    (r, start.elapsed().as_secs_f64())
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Observability overhead",
        "span recording cost and per-phase breakdown consistency",
    );
    println!(
        "trace feature compiled {}\n",
        if TraceSink::enabled() { "IN" } else { "OUT" }
    );

    // --- overhead: identical spec, spans off vs on -----------------------
    let clients = 32;
    let (base, wall_base) = timed_run(&spec(&args, Scheme::Catfish, clients, false));
    let (traced, wall_traced) = timed_run(&spec(&args, Scheme::Catfish, clients, true));
    println!("untraced: {}   [wall {:.2}s]", base.row(), wall_base);
    println!("traced:   {}   [wall {:.2}s]", traced.row(), wall_traced);
    let sim_delta = (traced.throughput_kops / base.throughput_kops - 1.0) * 100.0;
    let wall_delta = (wall_traced / wall_base - 1.0) * 100.0;
    println!(
        "sim throughput delta {sim_delta:+.2}% (limit ±{SIM_DELTA_PCT}%), wall-clock delta {wall_delta:+.1}%"
    );
    if sim_delta.abs() > SIM_DELTA_PCT {
        eprintln!("FAIL: tracing changed simulated throughput beyond {SIM_DELTA_PCT}%");
        std::process::exit(1);
    }
    if !TraceSink::enabled() && !traced.phase_hists.is_empty() {
        eprintln!("FAIL: spans recorded despite the trace feature being compiled out");
        std::process::exit(1);
    }

    // --- transport matrix: distributed request tracing off vs on ---------
    println!("\ntransport matrix (distributed tracing, limit ±{SPAN_DELTA_PCT}%):");
    for (label, base_spec) in matrix_cells(&args, clients) {
        let mut traced_spec = base_spec.clone();
        traced_spec.collect_spans = true;
        let (off, wall_off) = timed_run(&base_spec);
        let (on, wall_on) = timed_run(&traced_spec);
        let delta = if off.throughput_kops > 0.0 {
            (on.throughput_kops / off.throughput_kops - 1.0) * 100.0
        } else {
            0.0
        };
        let asm = TraceAssembler::assemble(&on.spans);
        println!(
            "  {label:<26} off {:>9.2} Kops  on {:>9.2} Kops  sim delta {delta:+.3}%  wall {:+.0}%  ({} spans, {} traces, {})",
            off.throughput_kops,
            on.throughput_kops,
            (wall_on / wall_off.max(1e-9) - 1.0) * 100.0,
            on.spans.len(),
            asm.len(),
            if asm.all_connected() { "connected" } else { "DISCONNECTED" },
        );
        if delta.abs() > SPAN_DELTA_PCT {
            eprintln!("FAIL: {label}: tracing changed simulated throughput by {delta:+.3}%");
            std::process::exit(1);
        }
        if TraceSink::enabled() {
            if on.spans.is_empty() {
                eprintln!("FAIL: {label}: no spans recorded with tracing on");
                std::process::exit(1);
            }
            if !asm.all_connected() {
                eprintln!("FAIL: {label}: assembled traces are not all connected");
                std::process::exit(1);
            }
        } else if !on.spans.is_empty() {
            eprintln!("FAIL: {label}: spans recorded despite the trace feature being compiled out");
            std::process::exit(1);
        }
    }

    // --- breakdown: one client, fast messaging only ----------------------
    // With a single closed-loop client there is no queueing overlap, so
    // the request-path phases partition the end-to-end latency.
    let (solo, _) = timed_run(&spec(&args, Scheme::FastMessaging, 1, true));
    if solo.phase_hists.is_empty() {
        println!("\nno phase spans recorded (trace feature off) — breakdown skipped");
    } else {
        println!("\nper-phase breakdown (1 client, fast messaging):");
        for (phase, hist) in &solo.phase_hists {
            println!("  {:>13}: {}", phase.name(), hist.summary());
        }
        let path_phases = [
            Phase::RingEnqueue,
            Phase::ServerQueue,
            Phase::Dispatch,
            Phase::IndexExec,
            Phase::RespTransit,
        ];
        let sum_ns: u64 = solo
            .phase_hists
            .iter()
            .filter(|(p, _)| path_phases.contains(p))
            .map(|(_, h)| h.summary().p50.as_nanos())
            .sum();
        let e2e_ns = solo.hist.summary().p50.as_nanos();
        let gap = (sum_ns as f64 / e2e_ns as f64 - 1.0) * 100.0;
        println!(
            "phase-sum p50 {:.2}us vs end-to-end p50 {:.2}us: gap {gap:+.2}% (limit ±{SUM_DELTA_PCT}%)",
            sum_ns as f64 / 1e3,
            e2e_ns as f64 / 1e3
        );
        if gap.abs() > SUM_DELTA_PCT {
            eprintln!("FAIL: phase breakdown does not account for the end-to-end p50");
            std::process::exit(1);
        }
    }

    write_metrics(&args, &traced.metrics());
    println!("\nOK");
}
