//! Beyond the paper: the adaptive algorithm's *dynamics* — server CPU
//! utilization and NIC bandwidth over time, sampled on a 10 ms grid while
//! a Catfish run converges. Prints an ASCII time series showing the
//! back-off bands escalating until both resources are productive, and the
//! oscillation the paper's §V-B discussion attributes to the heuristic.

use catfish_bench::{banner, paper_tree_config, write_metrics, BenchArgs};
use catfish_core::config::Scheme;
use catfish_core::harness::{run_experiment, ExperimentSpec};
use catfish_core::AdaptiveEvent;
use catfish_rdma::profile;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Adaptive dynamics",
        "server CPU% and bandwidth over time while Algorithm 1 converges",
    );
    let shards = args.shards.as_ref().map_or(1, |v| v[0]);
    let mut spec = ExperimentSpec {
        profile: profile::infiniband_100g(),
        scheme: Scheme::Catfish,
        clients: 128,
        client_nodes: 8,
        shards,
        dataset: uniform_rects(args.size, 1e-4, args.seed),
        trace: TraceSpec::search_only(ScaleDist::small(), args.requests.max(1_500)),
        tree_config: paper_tree_config(),
        seed: args.seed,
        collect_adaptive_events: true,
        ..ExperimentSpec::default()
    };
    args.apply_faults(&mut spec);
    let r = run_experiment(&spec);
    println!(
        "run: {} over {} ({} fast / {} offloaded)\n",
        r.row(),
        r.makespan,
        r.stats.fast_reads,
        r.stats.offloaded_reads
    );
    println!(
        "{:>8} {:>7} {:>9}  cpu [#] vs bandwidth [=] (each col = 2.5%/2.5Gbps)",
        "t (ms)", "cpu %", "bw Gbps"
    );
    for p in r.timeline.iter().step_by(2) {
        let cpu_bar = "#".repeat((p.cpu * 40.0).round() as usize);
        let bw_bar = "=".repeat((p.bw_gbps / 2.5).round() as usize);
        println!(
            "{:>8.0} {:>6.1}% {:>9.2}  {cpu_bar}",
            p.t_ms,
            p.cpu * 100.0,
            p.bw_gbps
        );
        println!("{:>27}{bw_bar}", "");
    }
    let escalations = r
        .adaptive_events
        .iter()
        .filter(|e| matches!(e.event, AdaptiveEvent::BandEscalated { .. }))
        .count();
    let resets = r
        .adaptive_events
        .iter()
        .filter(|e| matches!(e.event, AdaptiveEvent::BusyReset))
        .count();
    println!(
        "\nadaptive events: {} total ({} band escalations, {} busy resets)",
        r.adaptive_events.len(),
        escalations,
        resets
    );
    if shards > 1 {
        let mut per_shard = vec![0usize; shards];
        for e in &r.adaptive_events {
            per_shard[e.shard as usize] += 1;
        }
        println!("per-shard event counts: {per_shard:?}");
    }
    if let Some(base) = &args.metrics_out {
        let path = format!("{base}.events.jsonl");
        let mut jsonl = String::new();
        for e in &r.adaptive_events {
            jsonl.push_str(&e.to_json());
            jsonl.push('\n');
        }
        match std::fs::write(&path, jsonl) {
            Ok(()) => println!("[metrics] wrote {path}"),
            Err(e) => eprintln!("[metrics] write failed for {path}: {e}"),
        }
        write_metrics(&args, &r.metrics());
    }
    println!("\nThe CPU line pins near the T=95% threshold while bandwidth climbs as");
    println!("clients escalate their offloading bands — the balance the paper's");
    println!("heuristic targets, including its characteristic oscillation.");
}
