//! Figure 2 — the motivating measurement: server CPU utilization and NIC
//! bandwidth under a TCP/IP (1 GbE) search workload.
//!
//! Fig. 2(a): scale 0.01 — many results per query, the server link
//! saturates while CPU stays low. Fig. 2(b): scale 0.00001 — few results,
//! the server CPU saturates while bandwidth idles.

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::config::Scheme;
use catfish_core::harness::{run_experiment, ExperimentSpec};
use catfish_rdma::profile;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Fig. 2",
        "server CPU% and bandwidth vs clients, TCP/IP on 1 Gbps Ethernet",
    );
    let dataset = uniform_rects(args.size, 1e-4, args.seed);
    let clients = args
        .clients
        .clone()
        .unwrap_or_else(|| vec![2, 4, 8, 16, 32]);
    for (sub, scale) in [
        ("(a) request scale 0.01", ScaleDist::large()),
        ("(b) request scale 0.00001", ScaleDist::small()),
    ] {
        println!("\n--- Fig. 2{sub} ---");
        println!("{:>8} {:>10} {:>16}", "clients", "CPU util", "bandwidth");
        for &n in &clients {
            let mut spec = ExperimentSpec {
                profile: profile::ethernet_1g(),
                scheme: Scheme::TcpIp,
                clients: n,
                client_nodes: 8.min(n),
                dataset: dataset.clone(),
                trace: TraceSpec::search_only(scale, args.requests),
                tree_config: paper_tree_config(),
                seed: args.seed,
                ..ExperimentSpec::default()
            };
            args.apply_faults(&mut spec);
            let r = timed(&format!("fig2{sub} n={n}"), || run_experiment(&spec));
            println!(
                "{:>8} {:>9.1}% {:>11.3} Gbps",
                n,
                r.server_cpu * 100.0,
                r.server_bw_gbps
            );
        }
    }
}
