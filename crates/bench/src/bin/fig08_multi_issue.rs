//! Figure 8(b) — RDMA offloading with and without multi-issue.
//!
//! A single client offloads searches at four request scales; multi-issue
//! overlaps the round trips of sibling fetches, cutting latency most where
//! traversals touch many nodes (large scopes).

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::config::{AccessMode, ClientConfig, Scheme};
use catfish_core::harness::{run_experiment, ExperimentSpec};
use catfish_rdma::profile;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Fig. 8",
        "offloading latency: sequential vs multi-issue (1 client)",
    );
    let dataset = uniform_rects(args.size, 1e-4, args.seed);
    println!(
        "{:>10} {:>18} {:>18} {:>10}",
        "scale", "sequential", "multi-issue", "reduction"
    );
    for bound in [1e-5, 1e-4, 1e-3, 1e-2] {
        let mut means = Vec::new();
        for multi_issue in [false, true] {
            let mut spec = ExperimentSpec {
                profile: profile::infiniband_100g(),
                scheme: Scheme::RdmaOffloading,
                client_config: Some(ClientConfig {
                    mode: AccessMode::Offloading,
                    multi_issue,
                    ..ClientConfig::default()
                }),
                clients: 1,
                client_nodes: 1,
                dataset: dataset.clone(),
                trace: TraceSpec::search_only(ScaleDist::Fixed { bound }, args.requests),
                tree_config: paper_tree_config(),
                seed: args.seed,
                ..ExperimentSpec::default()
            };
            args.apply_faults(&mut spec);
            let r = timed(&format!("scale {bound} multi={multi_issue}"), || {
                run_experiment(&spec)
            });
            means.push(r.latency.mean);
        }
        let reduction = 100.0 * (means[0].as_nanos() as f64 - means[1].as_nanos() as f64)
            / means[0].as_nanos() as f64;
        println!(
            "{:>10} {:>18} {:>18} {:>9.2}%",
            bound,
            means[0].to_string(),
            means[1].to_string(),
            reduction
        );
    }
}
