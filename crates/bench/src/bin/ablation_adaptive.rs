//! Ablation: sensitivity of the adaptive algorithm to its three knobs —
//! the back-off base `N`, the busy threshold `T`, and the heartbeat
//! interval `Inv` — on the CPU-bound workload where adaptivity matters
//! most. Also includes the two degenerate policies (always-fast,
//! always-offload) as anchors.

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::config::{AccessMode, AdaptiveParams, ClientConfig, Scheme, ServerConfig};
use catfish_core::harness::{run_experiment, ExperimentSpec};
use catfish_rdma::profile;
use catfish_simnet::SimDuration;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Ablation",
        "adaptive parameters N / T / Inv (CPU-bound workload, 128 clients)",
    );
    let dataset = uniform_rects(args.size, 1e-4, args.seed);
    let clients = 128;

    let run = |label: &str, params: Option<AdaptiveParams>, hb: SimDuration| {
        let (scheme, client_config) = match params {
            Some(p) => (
                Scheme::Catfish,
                Some(ClientConfig {
                    mode: AccessMode::Adaptive(p),
                    multi_issue: true,
                    ..ClientConfig::default()
                }),
            ),
            None => (Scheme::Catfish, None),
        };
        let mut spec = ExperimentSpec {
            profile: profile::infiniband_100g(),
            scheme,
            client_config,
            clients,
            client_nodes: 8,
            dataset: dataset.clone(),
            trace: TraceSpec::search_only(ScaleDist::small(), args.requests),
            tree_config: paper_tree_config(),
            server: ServerConfig {
                heartbeat_interval: hb,
                ..ServerConfig::default()
            },
            seed: args.seed,
            ..ExperimentSpec::default()
        };
        args.apply_faults(&mut spec);
        let r = timed(label, || run_experiment(&spec));
        println!(
            "{:<28} {:>9.1} Kops  mean {:>10}  offloaded {:>5.1}%",
            label,
            r.throughput_kops,
            r.latency.mean.to_string(),
            100.0 * r.stats.offloaded_reads as f64
                / (r.stats.fast_reads + r.stats.offloaded_reads).max(1) as f64,
        );
    };

    println!("\n-- back-off base N (T=0.95, Inv=10ms) --");
    for n in [2u32, 4, 8, 16, 64] {
        run(
            &format!("N = {n}"),
            Some(AdaptiveParams {
                n_backoff: n,
                ..AdaptiveParams::default()
            }),
            SimDuration::from_millis(10),
        );
    }

    println!("\n-- busy threshold T (N=8, Inv=10ms) --");
    for t in [0.5, 0.8, 0.9, 0.95, 0.99] {
        run(
            &format!("T = {t}"),
            Some(AdaptiveParams {
                busy_threshold: t,
                ..AdaptiveParams::default()
            }),
            SimDuration::from_millis(10),
        );
    }

    println!("\n-- heartbeat interval Inv (N=8, T=0.95) --");
    for ms in [1u64, 5, 10, 50, 100] {
        run(
            &format!("Inv = {ms}ms"),
            Some(AdaptiveParams {
                heartbeat_interval: SimDuration::from_millis(ms),
                ..AdaptiveParams::default()
            }),
            SimDuration::from_millis(ms),
        );
    }

    println!("\n-- degenerate policies --");
    for (label, mode) in [
        ("always fast messaging", AccessMode::FastMessaging),
        ("always offloading", AccessMode::Offloading),
    ] {
        let mut spec = ExperimentSpec {
            profile: profile::infiniband_100g(),
            scheme: Scheme::Catfish,
            client_config: Some(ClientConfig {
                mode,
                multi_issue: true,
                ..ClientConfig::default()
            }),
            clients,
            client_nodes: 8,
            dataset: dataset.clone(),
            trace: TraceSpec::search_only(ScaleDist::small(), args.requests),
            tree_config: paper_tree_config(),
            seed: args.seed,
            ..ExperimentSpec::default()
        };
        args.apply_faults(&mut spec);
        let r = timed(label, || run_experiment(&spec));
        println!(
            "{:<28} {:>9.1} Kops  mean {:>10}",
            label,
            r.throughput_kops,
            r.latency.mean.to_string()
        );
    }
}
