//! Beyond the paper: throughput scaling of the space-partitioned cluster.
//!
//! Sweeps shard count × **clients per shard** (weak scaling: the client
//! fleet grows with the cluster, keeping per-machine demand constant)
//! under two load shapes:
//!
//! * **uniform** — query positions uniform over the unit square, so every
//!   shard carries `1/N` of the load and aggregate throughput should
//!   scale with shards (each shard is a full machine: own cores, own
//!   NIC);
//! * **hotspot** — a [`SpatialHotspot`] concentrates most query positions
//!   on the left slab, so one shard saturates while its siblings idle.
//!   Because Algorithm 1 runs *per shard*, the hot shard's clients
//!   escalate into RDMA offloading while the cold shards keep the
//!   lower-latency fast-messaging path — the per-shard adaptivity this
//!   topology exists to demonstrate.
//!
//! The binary asserts its own headline claims: ≥ 2.5× aggregate Kops at
//! 4 shards vs 1 at the highest client count under uniform load, and
//! hot-offloads-while-cold-stays-fast under the hotspot (checked from the
//! per-shard offload fractions and the shard-stamped adaptive event log).
//! A 1-shard cell runs the classic single-server topology, so the sweep's
//! baseline *is* the single-server figure configuration.
//!
//! Emits `BENCH_shards.json` (see EXPERIMENTS.md).

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::config::Scheme;
use catfish_core::harness::{run_experiment, ExperimentSpec, RunResult};
use catfish_core::{AdaptiveEvent, RouteChoice};
use catfish_rdma::profile;
use catfish_rtree::Rect;
use catfish_workload::{uniform_rects, ScaleDist, SpatialHotspot, TraceSpec};

/// The hot slab: the leftmost fifth of the space, which the x-partition
/// assigns to shard 0 at every swept shard count.
fn hotspot() -> SpatialHotspot {
    SpatialHotspot::new(Rect::new(0.0, 0.0, 0.2, 1.0), 0.85)
}

struct CellOut {
    hotspot: bool,
    result: RunResult,
    /// Per-shard counts of offloaded route decisions, from the adaptive
    /// event log (hotspot cells only).
    offload_routes: Vec<u64>,
}

fn run_cell(
    args: &BenchArgs,
    size: usize,
    requests: usize,
    clients_per_shard: usize,
    shards: usize,
    hot: bool,
) -> CellOut {
    let clients = clients_per_shard * shards;
    // The paper's CPU-bound scale (Fig. 10): tiny queries keep the server
    // worker pool the bottleneck — the regime where shards (machines) pay.
    let trace = TraceSpec::search_only(ScaleDist::small(), requests);
    let trace = if hot {
        trace.with_hotspot(hotspot())
    } else {
        trace
    };
    let spec = ExperimentSpec {
        profile: profile::infiniband_100g(),
        scheme: Scheme::Catfish,
        clients,
        client_nodes: (clients / 8).max(1),
        shards,
        dataset: uniform_rects(size, 1e-4, args.seed),
        trace,
        tree_config: paper_tree_config(),
        seed: args.seed,
        collect_adaptive_events: hot,
        ..ExperimentSpec::default()
    };
    let result = run_experiment(&spec);
    let mut offload_routes = vec![0u64; shards];
    for e in &result.adaptive_events {
        if let AdaptiveEvent::Route {
            route: RouteChoice::Offload,
        } = e.event
        {
            offload_routes[e.shard as usize] += 1;
        }
    }
    CellOut {
        hotspot: hot,
        result,
        offload_routes,
    }
}

/// One line per shard with its transport split (fast write-back /
/// mailbox-fetched / offloaded responses) and doorbell merge count —
/// the per-shard view the aggregated `row()` hides (a hot shard
/// offloading is invisible in cluster-wide mode totals).
fn per_shard_modes(r: &RunResult) -> String {
    let mut out = String::from("  modes/shard [");
    for (i, s) in r.per_shard_stats.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!(
            "{}:{}/{}/{}({})m{}",
            i,
            s.fast_reads,
            s.fetched_reads,
            s.offloaded_reads,
            s.dominant_transport(),
            s.merged_writes
        ));
    }
    out.push(']');
    out
}

fn json_cell(c: &CellOut) -> String {
    let r = &c.result;
    let fracs: Vec<String> = r
        .per_shard_stats
        .iter()
        .map(|s| format!("{:.4}", s.offload_fraction()))
        .collect();
    let per_shard = |f: &dyn Fn(&catfish_core::ServiceStats) -> u64| -> String {
        r.per_shard_stats
            .iter()
            .map(|s| f(s).to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        concat!(
            "{{\"load\":\"{}\",\"clients_total\":{},\"shards\":{},\"kops\":{:.3},",
            "\"mean_us\":{:.3},\"p99_us\":{:.3},\"cpu\":{:.4},\"bw_gbps\":{:.3},",
            "\"offload_fraction_per_shard\":[{}],\"offload_routes_per_shard\":{:?},",
            "\"fast_reads_per_shard\":[{}],\"fetched_reads_per_shard\":[{}],",
            "\"offloaded_reads_per_shard\":[{}],\"merged_writes_per_shard\":[{}]}}"
        ),
        if c.hotspot { "hotspot" } else { "uniform" },
        r.clients,
        r.shards,
        r.throughput_kops,
        r.latency.mean.as_nanos() as f64 / 1e3,
        r.latency.p99.as_nanos() as f64 / 1e3,
        r.server_cpu,
        r.server_bw_gbps,
        fracs.join(","),
        c.offload_routes,
        per_shard(&|s| s.fast_reads),
        per_shard(&|s| s.fetched_reads),
        per_shard(&|s| s.offloaded_reads),
        per_shard(&|s| s.merged_writes),
    )
}

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Shard scaling",
        "aggregate cluster throughput, uniform vs hotspot load",
    );
    // The sweep is 16 cells; a moderate tree keeps it minutes, not hours.
    let size = if args.paper {
        args.size
    } else {
        args.size.min(100_000)
    };
    let requests = if args.paper {
        args.requests
    } else {
        args.requests.min(200)
    };
    let shard_counts = args.shards.clone().unwrap_or_else(|| vec![1, 2, 4, 8]);
    let client_counts = args.clients.clone().unwrap_or_else(|| vec![16, 64]);
    println!(
        "dataset {size} rects, {requests} req/client, shards {shard_counts:?} x clients/shard {client_counts:?} (weak scaling), hot slab x<0.2 @ 85%"
    );

    let mut cells: Vec<CellOut> = Vec::new();
    for hot in [false, true] {
        let load = if hot { "hotspot" } else { "uniform" };
        println!("\n--- {load} load ---");
        for &cps in &client_counts {
            for &shards in &shard_counts {
                let label = format!("{load} c{cps}/shard s{shards}");
                let cell = timed(&label, || run_cell(&args, size, requests, cps, shards, hot));
                println!("{}", cell.result.row());
                if cell.result.shards > 1 {
                    println!("{}", per_shard_modes(&cell.result));
                }
                cells.push(cell);
            }
        }
    }

    let kops = |hot: bool, cps: usize, shards: usize| {
        cells
            .iter()
            .find(|c| {
                c.hotspot == hot && c.result.clients == cps * shards && c.result.shards == shards
            })
            .map(|c| c.result.throughput_kops)
    };

    // Gate 1: under uniform load at the highest per-shard client count,
    // 4 shards must deliver at least 2.5x the single server's aggregate
    // Kops — the weak-scaling headline.
    let top_clients = client_counts.iter().copied().max().unwrap();
    if let (Some(base), Some(four)) = (kops(false, top_clients, 1), kops(false, top_clients, 4)) {
        let speedup = four / base;
        println!("\nuniform speedup at 4 shards ({top_clients} clients/shard): {speedup:.2}x");
        assert!(
            speedup >= 2.5,
            "4-shard cluster only {speedup:.2}x over single server (need >= 2.5x)"
        );
    }

    // Gate 2: under the hotspot, the hot shard offloads while at least
    // one cold shard stays on the fast-messaging path — visible both in
    // the per-shard offload fractions and in the shard-stamped event log.
    if let Some(cell) = cells
        .iter()
        .filter(|c| {
            c.hotspot && c.result.clients == top_clients * c.result.shards && c.result.shards > 1
        })
        .max_by_key(|c| c.result.shards)
    {
        let fracs: Vec<f64> = cell
            .result
            .per_shard_stats
            .iter()
            .map(|s| s.offload_fraction())
            .collect();
        let hot_frac = fracs.iter().cloned().fold(0.0, f64::max);
        let cold_frac = fracs.iter().cloned().fold(1.0, f64::min);
        println!(
            "hotspot {} shards: offload fractions {:?}, offloaded routes {:?}",
            cell.result.shards,
            fracs.iter().map(|f| format!("{f:.2}")).collect::<Vec<_>>(),
            cell.offload_routes
        );
        assert!(
            hot_frac > 0.2,
            "hot shard should escalate into offloading (max fraction {hot_frac:.3})"
        );
        assert!(
            cold_frac < 0.05,
            "some cold shard should stay fast-messaging (min fraction {cold_frac:.3})"
        );
        let hot_shard = fracs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let cold_shard = fracs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(
            cell.offload_routes[hot_shard] > cell.offload_routes[cold_shard],
            "event log disagrees with stats: hot shard {hot_shard} logged {} offloaded routes, cold shard {cold_shard} logged {}",
            cell.offload_routes[hot_shard],
            cell.offload_routes[cold_shard]
        );
    }

    let body = format!(
        "{{\"harness\":\"shard_scaling\",\"dataset\":{size},\"requests_per_client\":{requests},\"seed\":{},\"hot_region\":[0.0,0.0,0.2,1.0],\"hot_fraction\":0.85,\"cells\":[\n{}\n]}}\n",
        args.seed,
        cells.iter().map(json_cell).collect::<Vec<_>>().join(",\n"),
    );
    let out = args
        .metrics_out
        .clone()
        .map(|b| format!("{b}.json"))
        .unwrap_or_else(|| "BENCH_shards.json".to_string());
    std::fs::write(&out, body).expect("write shard scaling results");
    println!("wrote {out}");
}
