//! Figure 14 — search throughput and latency on the (synthetic) rea02
//! dataset: clustered California street-segment rectangles with queries
//! calibrated to return 50–150 results each.

use std::rc::Rc;

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::config::Scheme;
use catfish_core::harness::{run_experiment, ExperimentSpec};
use catfish_rdma::profile;
use catfish_workload::{rea02_dataset, rea02_queries, Request};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Fig. 14",
        "rea02 (synthetic): search throughput and latency",
    );
    let size = if args.paper {
        catfish_workload::REA02_FULL_SIZE
    } else {
        args.size
    };
    let dataset = rea02_dataset(size, args.seed);
    let clients = args
        .clients
        .clone()
        .unwrap_or_else(|| vec![32, 64, 128, 256]);
    let schemes: [(Scheme, catfish_rdma::NetProfile); 5] = [
        (Scheme::TcpIp, profile::ethernet_1g()),
        (Scheme::TcpIp, profile::ethernet_40g()),
        (Scheme::FastMessaging, profile::infiniband_100g()),
        (Scheme::RdmaOffloading, profile::infiniband_100g()),
        (Scheme::Catfish, profile::infiniband_100g()),
    ];
    // Pre-generate per-client query traces from the dataset's query model
    // (50-150 results per query, avg ~100).
    let max_clients = *clients.iter().max().expect("non-empty sweep");
    let traces: Vec<Vec<Request>> = (0..max_clients)
        .map(|c| {
            rea02_queries(&dataset, args.requests, 50, 150, args.seed ^ (c as u64 + 1))
                .into_iter()
                .map(Request::Search)
                .collect()
        })
        .collect();
    let traces = Rc::new(traces);
    for &n in &clients {
        for (scheme, prof) in &schemes {
            let mut spec = ExperimentSpec {
                profile: *prof,
                scheme: *scheme,
                clients: n,
                client_nodes: 8,
                dataset: dataset.clone(),
                tree_config: paper_tree_config(),
                seed: args.seed,
                explicit_traces: Some(Rc::clone(&traces)),
                ..ExperimentSpec::default()
            };
            args.apply_faults(&mut spec);
            let label = format!("rea02 {} n={}", scheme.label(prof), n);
            let r = timed(&label, || run_experiment(&spec));
            println!("{}", r.row());
        }
        println!();
    }
}
