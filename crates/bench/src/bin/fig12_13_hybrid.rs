//! Figures 12 & 13 — throughput and latency of the hybrid workload:
//! 90 % searches + 10 % inserts with corner-skewed insert positions.
//!
//! Writes always travel through the ring and are executed by server
//! threads; concurrent inserts also make offloading clients retry torn
//! reads, which the tables report.

use catfish_bench::{banner, paper_tree_config, timed, BenchArgs};
use catfish_core::config::Scheme;
use catfish_core::harness::{run_experiment, ExperimentSpec};
use catfish_rdma::profile;
use catfish_workload::{uniform_rects, ScaleDist, TraceSpec};

fn main() {
    let args = BenchArgs::parse();
    banner(
        "Fig. 12 / Fig. 13",
        "hybrid workload (90% search / 10% insert): throughput and latency",
    );
    let dataset = uniform_rects(args.size, 1e-4, args.seed);
    let clients = args
        .clients
        .clone()
        .unwrap_or_else(|| vec![32, 64, 128, 256]);
    let scales = [
        ("scale 0.00001", ScaleDist::small()),
        ("scale 0.01", ScaleDist::large()),
        ("power law", ScaleDist::power_law()),
    ];
    let schemes: [(Scheme, catfish_rdma::NetProfile); 5] = [
        (Scheme::TcpIp, profile::ethernet_1g()),
        (Scheme::TcpIp, profile::ethernet_40g()),
        (Scheme::FastMessaging, profile::infiniband_100g()),
        (Scheme::RdmaOffloading, profile::infiniband_100g()),
        (Scheme::Catfish, profile::infiniband_100g()),
    ];
    for (scale_label, scale) in scales {
        println!("\n--- {scale_label} ---");
        for &n in &clients {
            for (scheme, prof) in &schemes {
                let mut spec = ExperimentSpec {
                    profile: *prof,
                    scheme: *scheme,
                    clients: n,
                    client_nodes: 8,
                    dataset: dataset.clone(),
                    trace: TraceSpec::hybrid(scale, args.requests),
                    tree_config: paper_tree_config(),
                    seed: args.seed,
                    ..ExperimentSpec::default()
                };
                args.apply_faults(&mut spec);
                let label = format!("{} n={}", scheme.label(prof), n);
                let r = timed(&label, || run_experiment(&spec));
                println!(
                    "{}  [search mean {} / insert mean {} / {}]",
                    r.row(),
                    r.search_latency.mean,
                    r.insert_latency.mean,
                    r.stats
                );
            }
            println!();
        }
    }
}
