//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts the same flags (all optional):
//!
//! * `--size N` — rectangles in the pre-built tree (default 200 000;
//!   the paper uses 2 000 000 — pass `--paper` for full scale);
//! * `--requests N` — search requests per client (default 200; paper
//!   uses 10 000);
//! * `--clients a,b,c` — client counts to sweep (figure-specific default);
//! * `--paper` — full paper-scale parameters (slow: minutes per figure);
//! * `--seed N` — RNG seed (default 42);
//! * `--metrics-out BASE` — write `BASE.prom` (Prometheus text format)
//!   and `BASE.jsonl` metric snapshots of the run (binaries that record
//!   adaptive events also write `BASE.events.jsonl`).
//!
//! Absolute numbers are simulation outputs, not testbed measurements; the
//! reproduction target is the *shape* of each figure (see EXPERIMENTS.md).

use catfish_rtree::RTreeConfig;
use std::time::Instant;

/// Common benchmark knobs parsed from the command line.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Tree size (rectangles).
    pub size: usize,
    /// Requests per client.
    pub requests: usize,
    /// Client counts to sweep (None = figure default).
    pub clients: Option<Vec<usize>>,
    /// RNG seed.
    pub seed: u64,
    /// Full paper-scale run.
    pub paper: bool,
    /// Base path for metric snapshots (`--metrics-out`): the binary
    /// writes `<base>.prom` and `<base>.jsonl` when set.
    pub metrics_out: Option<String>,
    /// Fault injection: RDMA write-loss probability (`--loss`, default 0).
    pub loss: f64,
    /// Fault injection: per-frame worker-stall probability (`--stall`).
    pub stall: f64,
    /// Fault injection: per-tick heartbeat suppression probability
    /// (`--hb-drop`).
    pub hb_drop: f64,
    /// Client per-attempt request timeout override in microseconds
    /// (`--timeout`).
    pub timeout_us: Option<u64>,
    /// Client retransmission budget override (`--max-retries`).
    pub max_retries: Option<u32>,
    /// Shard counts to sweep (`--shards a,b,c`; None = binary default,
    /// usually 1 = the classic single server).
    pub shards: Option<Vec<usize>>,
    /// Base path for distributed-trace exports (`--trace-out`): the binary
    /// enables span collection and writes `<base>.spans.jsonl` (one span
    /// record per line) and `<base>.trace.json` (Chrome `trace_event`
    /// format, loadable in `chrome://tracing` / Perfetto).
    pub trace_out: Option<String>,
    /// Declared service-level objectives (`--slo`, e.g.
    /// `p99=500us,kops=50,budget=0.01`). Binaries that support the gate
    /// evaluate the run against the spec and exit nonzero on violation.
    pub slo: Option<catfish_core::obs::SloSpec>,
    /// Members per replica set (`--replicas k`; 1 = unreplicated). Every
    /// shard becomes a k-way replica set with primary-forwarded mutations
    /// and epoch-fenced failover.
    pub replicas: usize,
    /// Crash the primary of shard 0 partway through the run
    /// (`--kill-primary`): supported binaries partition it mid-batch,
    /// let the set promote, then audit exactly-once delivery.
    pub kill_primary: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            size: 1_000_000,
            requests: 1_000,
            clients: None,
            seed: 42,
            paper: false,
            metrics_out: None,
            loss: 0.0,
            stall: 0.0,
            hb_drop: 0.0,
            timeout_us: None,
            max_retries: None,
            shards: None,
            trace_out: None,
            slo: None,
            replicas: 1,
            kill_primary: false,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args`, panicking with usage on malformed input.
    pub fn parse() -> Self {
        let mut out = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--size" => out.size = next_num(&mut args, "--size") as usize,
                "--requests" => out.requests = next_num(&mut args, "--requests") as usize,
                "--seed" => out.seed = next_num(&mut args, "--seed"),
                "--clients" => {
                    let v = args.next().expect("--clients needs a,b,c");
                    out.clients = Some(
                        v.split(',')
                            .map(|s| s.parse().expect("client counts are integers"))
                            .collect(),
                    );
                }
                "--paper" => {
                    out.paper = true;
                    out.size = 2_000_000;
                    out.requests = 10_000;
                }
                "--metrics-out" => {
                    out.metrics_out = Some(args.next().expect("--metrics-out needs a base path"));
                }
                "--trace-out" => {
                    out.trace_out = Some(args.next().expect("--trace-out needs a base path"));
                }
                "--slo" => {
                    let v = args
                        .next()
                        .expect("--slo needs a spec like p99=500us,kops=50");
                    out.slo = Some(
                        catfish_core::obs::SloSpec::parse(&v)
                            .unwrap_or_else(|e| panic!("--slo: {e}")),
                    );
                }
                "--loss" => out.loss = next_prob(&mut args, "--loss"),
                "--stall" => out.stall = next_prob(&mut args, "--stall"),
                "--hb-drop" => out.hb_drop = next_prob(&mut args, "--hb-drop"),
                "--timeout" => out.timeout_us = Some(next_num(&mut args, "--timeout")),
                "--max-retries" => {
                    out.max_retries = Some(next_num(&mut args, "--max-retries") as u32);
                }
                "--shards" => {
                    let v = args.next().expect("--shards needs a,b,c");
                    let counts: Vec<usize> = v
                        .split(',')
                        .map(|s| s.parse().expect("shard counts are integers"))
                        .collect();
                    assert!(
                        counts.iter().all(|&s| s > 0),
                        "--shards counts must be positive"
                    );
                    out.shards = Some(counts);
                }
                "--replicas" => {
                    out.replicas = next_num(&mut args, "--replicas") as usize;
                    assert!(out.replicas > 0, "--replicas must be positive");
                }
                "--kill-primary" => out.kill_primary = true,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --size N --requests N --clients a,b,c --shards a,b,c --replicas K --kill-primary \
                         --seed N --paper --metrics-out BASE \
                         --trace-out BASE --slo SPEC --loss P --stall P --hb-drop P --timeout USEC --max-retries N  \
                         (defaults: 1M rects, 1000 req/client, 1 shard, 1 replica, faults off)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        out
    }
}

fn next_num(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next()
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag} needs an integer"))
}

fn next_prob(args: &mut impl Iterator<Item = String>, flag: &str) -> f64 {
    let p: f64 = args
        .next()
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag} needs a probability"));
    assert!((0.0..=1.0).contains(&p), "{flag} must be in [0, 1]");
    p
}

impl BenchArgs {
    /// Enables span collection on `spec` when `--trace-out` was given.
    /// Call alongside [`BenchArgs::apply_faults`]; with the flag unset
    /// this is a no-op.
    pub fn apply_tracing(&self, spec: &mut catfish_core::harness::ExperimentSpec) {
        if self.trace_out.is_some() {
            spec.collect_spans = true;
        }
    }

    /// Writes the run's distributed trace to `<base>.spans.jsonl` and
    /// `<base>.trace.json` when `--trace-out` was given, printing the
    /// paths and the assembly's connectivity (export failures never fail
    /// a benchmark). No-op without the flag.
    pub fn write_trace(&self, result: &catfish_core::harness::RunResult) {
        let Some(base) = &self.trace_out else {
            return;
        };
        let asm = catfish_core::obs::TraceAssembler::assemble(&result.spans);
        let mut jsonl = String::new();
        for s in &result.spans {
            jsonl.push_str(&s.to_json());
            jsonl.push('\n');
        }
        let spans_path = format!("{base}.spans.jsonl");
        let chrome_path = format!("{base}.trace.json");
        match std::fs::write(&spans_path, jsonl)
            .and_then(|()| std::fs::write(&chrome_path, asm.to_chrome_json()))
        {
            Ok(()) => println!(
                "[trace] wrote {spans_path} and {chrome_path} ({} spans, {} traces, {})",
                result.spans.len(),
                asm.len(),
                if asm.all_connected() {
                    "all connected".to_string()
                } else {
                    format!("{} DISCONNECTED", asm.disconnected().len())
                }
            ),
            Err(e) => eprintln!("[trace] write failed for base {base}: {e}"),
        }
    }

    /// Evaluates the run against `--slo` (when given), printing the
    /// per-objective burn rates. Returns `false` on violation — callers
    /// exit nonzero so CI can gate on declared objectives. Requests that
    /// expired at least one attempt (timeouts) count against the error
    /// budget.
    pub fn check_slo(&self, result: &catfish_core::harness::RunResult) -> bool {
        self.check_slo_parts(
            &result.hist,
            result.throughput_kops,
            result.stats.timeouts,
            result.completed_requests as u64,
        )
    }

    /// Like [`BenchArgs::check_slo`] for binaries that measure outside the
    /// harness: evaluate a raw latency histogram, throughput, and error
    /// count against `--slo`.
    pub fn check_slo_parts(
        &self,
        hist: &catfish_core::LatencyHistogram,
        kops: f64,
        errors: u64,
        requests: u64,
    ) -> bool {
        let Some(spec) = &self.slo else {
            return true;
        };
        let report = spec.evaluate(hist, kops, errors, requests);
        for line in report.to_string().lines() {
            println!("[slo] {line}");
        }
        report.ok()
    }

    /// Applies the fault-injection and retry knobs to `spec`. With all
    /// knobs at their defaults this is a no-op, so every figure binary can
    /// call it unconditionally and stay byte-identical to a knob-free run.
    pub fn apply_faults(&self, spec: &mut catfish_core::harness::ExperimentSpec) {
        if self.loss > 0.0 || self.stall > 0.0 || self.hb_drop > 0.0 {
            spec.fault = Some(catfish_rdma::FaultConfig {
                drop_write: self.loss,
                stall: self.stall,
                suppress_heartbeat: self.hb_drop,
                ..catfish_rdma::FaultConfig::off()
            });
        }
        if let Some(us) = self.timeout_us {
            spec.request_timeout = Some(catfish_simnet::SimDuration::from_micros(us));
        }
        if let Some(r) = self.max_retries {
            spec.max_retries = Some(r);
        }
    }
}

/// Prints a figure banner.
pub fn banner(figure: &str, what: &str) {
    println!("==================================================================");
    println!("{figure} — {what}");
    println!("==================================================================");
}

/// Writes a [`catfish_core::MetricsRegistry`] snapshot to
/// `<base>.prom`/`<base>.jsonl` when `--metrics-out` was given, printing
/// the paths (or the error — metrics failures never fail a benchmark).
pub fn write_metrics(args: &BenchArgs, reg: &catfish_core::MetricsRegistry) {
    let Some(base) = &args.metrics_out else {
        return;
    };
    match reg.write_files(base) {
        Ok((prom, jsonl)) => println!("[metrics] wrote {prom} and {jsonl}"),
        Err(e) => eprintln!("[metrics] write failed for base {base}: {e}"),
    }
}

/// Runs `f`, printing wall-clock time spent simulating.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("[wall] {label}: {:.1}s", start.elapsed().as_secs_f64());
    out
}

/// The tree configuration used by the figure benchmarks: fanout 88 packs
/// a node into exactly one 4 KiB chunk (64 cache lines), matching the
/// page-sized nodes a production deployment would register. The paper does
/// not state its fanout; this choice, with the default cost model, puts
/// per-search fetch volume and server CPU cost in the regime the paper's
/// measurements imply (see DESIGN.md §5).
pub fn paper_tree_config() -> RTreeConfig {
    RTreeConfig::with_max_entries(88)
}
