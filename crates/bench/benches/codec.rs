//! Criterion micro-benchmarks of the versioned cache-line chunk codec —
//! the cost offloading clients pay per fetched node and servers pay per
//! node write.

use catfish_rtree::codec::ChunkLayout;
use catfish_rtree::{Entry, Node, Rect};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn full_leaf(max_entries: usize) -> Node {
    let mut n = Node::new(0);
    for i in 0..max_entries as u64 {
        let x = i as f64 * 0.001;
        n.entries
            .push(Entry::data(Rect::new(x, x, x + 0.01, x + 0.01), i));
    }
    n
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_encode");
    for m in [16usize, 88] {
        let layout = ChunkLayout::for_max_entries(m);
        let node = full_leaf(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut version = 0u64;
            b.iter(|| {
                version += 1;
                layout.encode_node(&node, version)
            });
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_decode");
    for m in [16usize, 88] {
        let layout = ChunkLayout::for_max_entries(m);
        let chunk = layout.encode_node(&full_leaf(m), 7);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| layout.decode_node(&chunk).expect("valid chunk"));
        });
    }
    group.finish();
}

fn bench_torn_detection(c: &mut Criterion) {
    // Worst case: the conflicting version is in the last line.
    let layout = ChunkLayout::for_max_entries(88);
    let mut chunk = layout.encode_node(&full_leaf(88), 7);
    let last = chunk.len() - 64;
    chunk[last..last + 8].copy_from_slice(&8u64.to_le_bytes());
    c.bench_function("codec_detect_torn_last_line", |b| {
        b.iter(|| layout.decode_node(&chunk).expect_err("torn"));
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_torn_detection);
criterion_main!(benches);
