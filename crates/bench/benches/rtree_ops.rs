//! Criterion micro-benchmarks of the R*-tree itself: insert, search at the
//! paper's request scales, delete, and STR bulk loading.

use catfish_rtree::{bulk_load, MemStore, RTree, RTreeConfig, Rect};
use catfish_workload::uniform_rects;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_tree(n: usize) -> RTree<MemStore> {
    bulk_load(
        MemStore::new(),
        RTreeConfig::default(),
        uniform_rects(n, 1e-4, 1),
    )
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_insert");
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // The tree grows across iterations; cost is amortized over the
            // whole run, which is what a sustained-ingest workload sees.
            let mut tree = build_tree(n);
            let mut rng = StdRng::seed_from_u64(2);
            let inputs: Vec<(Rect, u64)> = (0..1_000_000u64)
                .map(|i| {
                    let x = rng.gen::<f64>() * 0.999;
                    let y = rng.gen::<f64>() * 0.999;
                    (Rect::new(x, y, x + 1e-4, y + 1e-4), u64::MAX / 2 + i)
                })
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (r, d) = inputs[i % inputs.len()];
                tree.insert(r, d);
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_search");
    let tree = build_tree(200_000);
    for (label, edge) in [("scale_1e-5", 1e-5), ("scale_1e-2", 1e-2)] {
        group.bench_function(label, |b| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut out = Vec::new();
            b.iter(|| {
                let x = rng.gen::<f64>() * (1.0 - edge);
                let y = rng.gen::<f64>() * (1.0 - edge);
                out.clear();
                tree.search_into(&Rect::new(x, y, x + edge, y + edge), &mut out)
            });
        });
    }
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    c.bench_function("rtree_delete_insert_cycle", |b| {
        let mut tree = build_tree(50_000);
        let items = tree.items();
        let mut i = 0usize;
        b.iter(|| {
            let (r, d) = items[i % items.len()];
            assert!(tree.delete(&r, d));
            tree.insert(r, d);
            i += 1;
        });
    });
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_bulk_load");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let items = uniform_rects(n, 1e-4, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter_batched(
                || items.clone(),
                |items| bulk_load(MemStore::new(), RTreeConfig::default(), items),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_search,
    bench_delete,
    bench_bulk_load
);
criterion_main!(benches);
