//! Criterion micro-benchmarks of the R*-tree itself: insert, search at the
//! paper's request scales, delete, and STR bulk loading.

use catfish_rtree::chunk::{ChunkMemory, ChunkStore};
use catfish_rtree::codec::ChunkLayout;
use catfish_rtree::{bulk_load, EntryRef, MemStore, NodeStore, RTree, RTreeConfig, Rect};
use catfish_workload::uniform_rects;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_tree(n: usize) -> RTree<MemStore> {
    bulk_load(
        MemStore::new(),
        RTreeConfig::default(),
        uniform_rects(n, 1e-4, 1),
    )
}

fn build_chunk_tree(n: usize) -> RTree<ChunkStore<Vec<u8>>> {
    let config = RTreeConfig::default();
    let layout = ChunkLayout::for_max_entries(config.max_entries);
    // STR packing needs roughly n / max_entries leaf chunks plus the
    // internal levels; n / 4 leaves ample headroom for later inserts.
    let chunks = (n / 4 + 1024) as u32;
    bulk_load(
        ChunkStore::new(vec![0u8; layout.arena_bytes(chunks)], layout),
        config,
        uniform_rects(n, 1e-4, 1),
    )
}

/// The chunk-store read path as it was before the borrowed `visit` API:
/// every node visited allocates a fresh chunk buffer and decodes into a
/// fresh [`catfish_rtree::Node`]. Kept here as the baseline the
/// `rtree_chunk_search/borrowed_*` benches are measured against.
fn owned_decode_search(store: &ChunkStore<Vec<u8>>, query: &Rect, out: &mut Vec<u64>) {
    let Some(root) = store.meta().root else {
        return;
    };
    let layout = store.layout();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let mut chunk = vec![0u8; layout.chunk_bytes()];
        store.mem().read_into(layout.node_offset(id), &mut chunk);
        let (node, _version) = layout
            .decode_node(&chunk)
            .expect("local decode cannot tear");
        for e in &node.entries {
            if e.mbr.intersects(query) {
                match e.child {
                    EntryRef::Node(child) => stack.push(child),
                    EntryRef::Data(d) => out.push(d),
                }
            }
        }
    }
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_insert");
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // The tree grows across iterations; cost is amortized over the
            // whole run, which is what a sustained-ingest workload sees.
            let mut tree = build_tree(n);
            let mut rng = StdRng::seed_from_u64(2);
            let inputs: Vec<(Rect, u64)> = (0..1_000_000u64)
                .map(|i| {
                    let x = rng.gen::<f64>() * 0.999;
                    let y = rng.gen::<f64>() * 0.999;
                    (Rect::new(x, y, x + 1e-4, y + 1e-4), u64::MAX / 2 + i)
                })
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (r, d) = inputs[i % inputs.len()];
                tree.insert(r, d);
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_search");
    let tree = build_tree(200_000);
    for (label, edge) in [("scale_1e-5", 1e-5), ("scale_1e-2", 1e-2)] {
        group.bench_function(label, |b| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut out = Vec::new();
            b.iter(|| {
                let x = rng.gen::<f64>() * (1.0 - edge);
                let y = rng.gen::<f64>() * (1.0 - edge);
                out.clear();
                tree.search_into(&Rect::new(x, y, x + edge, y + edge), &mut out)
            });
        });
    }
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    c.bench_function("rtree_delete_insert_cycle", |b| {
        let mut tree = build_tree(50_000);
        let items = tree.items();
        let mut i = 0usize;
        b.iter(|| {
            let (r, d) = items[i % items.len()];
            assert!(tree.delete(&r, d));
            tree.insert(r, d);
            i += 1;
        });
    });
}

fn bench_chunk_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_chunk_search");
    let tree = build_chunk_tree(200_000);

    // Sanity: the borrowed path and the owned-decode baseline agree before
    // we time either of them.
    {
        let q = Rect::new(0.4, 0.4, 0.41, 0.41);
        let mut borrowed = Vec::new();
        let mut owned = Vec::new();
        tree.search_into(&q, &mut borrowed);
        owned_decode_search(tree.store(), &q, &mut owned);
        borrowed.sort_unstable();
        owned.sort_unstable();
        assert_eq!(borrowed, owned);
    }

    for (label, edge) in [("borrowed_1e-5", 1e-5), ("borrowed_1e-2", 1e-2)] {
        group.bench_function(label, |b| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut out = Vec::new();
            b.iter(|| {
                let x = rng.gen::<f64>() * (1.0 - edge);
                let y = rng.gen::<f64>() * (1.0 - edge);
                out.clear();
                tree.search_into(&Rect::new(x, y, x + edge, y + edge), &mut out)
            });
        });
    }
    for (label, edge) in [("owned_1e-5", 1e-5), ("owned_1e-2", 1e-2)] {
        group.bench_function(label, |b| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut out = Vec::new();
            b.iter(|| {
                let x = rng.gen::<f64>() * (1.0 - edge);
                let y = rng.gen::<f64>() * (1.0 - edge);
                out.clear();
                owned_decode_search(tree.store(), &Rect::new(x, y, x + edge, y + edge), &mut out);
                out.len()
            });
        });
    }
    group.finish();
}

fn bench_chunk_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_chunk_insert");
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // Insert a fresh item, then delete it again so the arena stays
            // within its fixed chunk budget however long the run is. The
            // pair still exercises the encode-on-write path plus the
            // borrowed descent on every iteration.
            let mut tree = build_chunk_tree(n);
            let mut rng = StdRng::seed_from_u64(5);
            let inputs: Vec<(Rect, u64)> = (0..65_536u64)
                .map(|i| {
                    let x = rng.gen::<f64>() * 0.999;
                    let y = rng.gen::<f64>() * 0.999;
                    // Distinct from the bulk-loaded payloads, and clear of
                    // the codec's reserved node/data tag bit.
                    (Rect::new(x, y, x + 1e-4, y + 1e-4), (1 << 40) + i)
                })
                .collect();
            let mut i = 0usize;
            b.iter(|| {
                let (r, d) = inputs[i % inputs.len()];
                tree.insert(r, d);
                assert!(tree.delete(&r, d));
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_bulk_load");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let items = uniform_rects(n, 1e-4, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &items, |b, items| {
            b.iter_batched(
                || items.clone(),
                |items| bulk_load(MemStore::new(), RTreeConfig::default(), items),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_search,
    bench_chunk_search,
    bench_chunk_insert,
    bench_delete,
    bench_bulk_load
);
criterion_main!(benches);
