//! Criterion micro-benchmark of one node visit during a window search:
//! the legacy array-of-structs path (owned decode, scalar per-entry
//! intersection tests) against the struct-of-arrays path (lane decode
//! into pooled scratch, branchless hit bitmask). The SoA path is the one
//! [`catfish_rtree::chunk::ChunkStore`] runs on every server-side search;
//! the >2x gate on this comparison lives in the `simd_sweep` binary.

use catfish_rtree::codec::{ChunkLayout, LaneNode};
use catfish_rtree::{Entry, Node, Rect};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn full_leaf(max_entries: usize) -> Node {
    let mut n = Node::new(0);
    for i in 0..max_entries as u64 {
        let x = (i as f64 * 0.0137) % 0.9;
        n.entries
            .push(Entry::data(Rect::new(x, x, x + 0.01, x + 0.01), i));
    }
    n
}

fn bench_node_visit(c: &mut Criterion) {
    // A selective window: a few entries hit, most miss — the common shape
    // of one visited node during a paper-scale search.
    let query = Rect::new(0.1, 0.1, 0.2, 0.2);
    let mut group = c.benchmark_group("node_visit_aos_scalar");
    for m in [16usize, 88] {
        let layout = ChunkLayout::for_max_entries(m);
        let chunk = layout.encode_node(&full_leaf(m), 7);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let (node, _) = layout.decode_node(&chunk).expect("valid chunk");
                node.entries
                    .iter()
                    .filter(|e| e.mbr.intersects(&query))
                    .count()
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("node_visit_soa_bitmask");
    for m in [16usize, 88] {
        let layout = ChunkLayout::for_max_entries(m);
        let chunk = layout.encode_node(&full_leaf(m), 7);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut lanes = LaneNode::new();
            b.iter(|| {
                layout
                    .decode_lanes_into(&chunk, &mut lanes)
                    .expect("valid chunk");
                lanes.window_hits(&query).count_ones()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_node_visit);
criterion_main!(benches);
