//! Criterion micro-benchmarks of the B+-tree (the §VI generality
//! substrate): get, insert, remove/insert cycling, and range scans.

use catfish_bplus::{BpConfig, BpMemStore, BpTree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_tree(n: u64) -> BpTree<BpMemStore> {
    let mut t = BpTree::new(BpMemStore::new(), BpConfig::default());
    for i in 0..n {
        t.insert(i * 2, i);
    }
    t
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("bplus_get");
    for n in [10_000u64, 1_000_000] {
        let tree = build_tree(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| tree.get(rng.gen::<u64>() % (n * 2)));
        });
    }
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    c.bench_function("bplus_insert_remove_cycle", |b| {
        let mut tree = build_tree(100_000);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let k = rng.gen::<u64>() % 400_000 + 1_000_000;
            tree.insert(k, 1);
            tree.remove(k);
        });
    });
}

fn bench_range(c: &mut Criterion) {
    let tree = build_tree(1_000_000);
    let mut group = c.benchmark_group("bplus_range");
    for span in [100u64, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(span), &span, |b, &span| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let lo = rng.gen::<u64>() % (2_000_000 - span);
                tree.range(lo, lo + span)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_get, bench_insert_remove, bench_range);
criterion_main!(benches);
