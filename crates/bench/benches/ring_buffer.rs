//! Criterion micro-benchmarks of the ring-buffer protocol: full simulated
//! send→receive cycles, including wrap-around pressure.
//!
//! These run entire mini-simulations per iteration batch, so the numbers
//! measure simulator+protocol cost (useful for tracking regressions in the
//! hot path that every fast-messaging request crosses twice).

use catfish_core::conn::{establish, RkeyAllocator};
use catfish_core::msg::Message;
use catfish_rdma::{Endpoint, RdmaProfile};
use catfish_rtree::Rect;
use catfish_simnet::{LinkSpec, Network, Sim, SimDuration};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ring_round_trips(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_round_trips");
    for msgs in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(msgs), &msgs, |b, &msgs| {
            b.iter(|| {
                let sim = Sim::new();
                sim.run_until(async move {
                    let net = Network::new();
                    let spec = LinkSpec::gbps(100.0, SimDuration::from_micros(1));
                    let client_ep = Endpoint::new(&net, net.add_node(spec), RdmaProfile::default());
                    let server_ep = Endpoint::new(&net, net.add_node(spec), RdmaProfile::default());
                    let rkeys = RkeyAllocator::new();
                    let (cc, sc) = establish(&client_ep, &server_ep, 64 * 1024, &rkeys);
                    let echo = catfish_simnet::spawn(async move {
                        for _ in 0..msgs {
                            let m = sc.rx.wait_message().await;
                            sc.tx.send(&m, 0).await.unwrap();
                        }
                    });
                    for i in 0..msgs {
                        cc.tx.send(&vec![0u8; 64 + (i % 128)], 0).await.unwrap();
                        cc.rx.wait_message().await;
                    }
                    echo.await;
                })
            });
        });
    }
    group.finish();
}

fn bench_message_codec(c: &mut Criterion) {
    let msg = Message::ResponseEnd {
        seq: 9,
        results: (0..100u64)
            .map(|i| (Rect::new(0.0, 0.0, 0.1, 0.1), i))
            .collect(),
        status: 1,
    };
    let bytes = msg.encode();
    c.bench_function("message_encode_100_results", |b| b.iter(|| msg.encode()));
    c.bench_function("message_decode_100_results", |b| {
        b.iter(|| Message::decode(&bytes).expect("valid"))
    });
}

criterion_group!(benches, bench_ring_round_trips, bench_message_codec);
criterion_main!(benches);
