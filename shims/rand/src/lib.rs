//! Minimal offline shim for the subset of the `rand` crate API this
//! workspace uses: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng`.
//!
//! `StdRng` is a splitmix64-seeded xoshiro256++-style generator —
//! deterministic for a given seed, which is all the simulation and the
//! benches need. It is NOT the real `StdRng` stream: code must not rely
//! on byte-identical sequences with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Values that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// The random-generator trait: a 64-bit core plus convenience samplers.
pub trait Rng {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Seedable construction, shimmed down to the one constructor in use.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 256-bit-state generator (xoshiro256++ style), seeded
    /// via splitmix64. Not the upstream `StdRng` stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn distribution_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
