//! Minimal offline shim for the subset of the `criterion` benchmark
//! harness this workspace uses. Each benchmark is timed with
//! `std::time::Instant`: a short calibration pass picks an iteration
//! count targeting ~200 ms per sample, several samples run, and the
//! median ns/iter is printed in a criterion-like format:
//!
//! ```text
//! group/name              time: [12.345 µs 12.400 µs 12.501 µs]
//! ```
//!
//! There is no statistical analysis, outlier rejection, or HTML report —
//! just honest wall-clock medians, which is enough to compare two code
//! paths in the same process run.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost; the shim times each routine
/// invocation individually, so the variants behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per routine invocation, small input.
    SmallInput,
    /// One setup per routine invocation, large input.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    target: Duration,
    samples: usize,
    /// Collected ns/iter samples.
    results: Vec<f64>,
}

impl Bencher {
    fn new(target: Duration, samples: usize) -> Self {
        Bencher {
            target,
            samples,
            results: Vec::new(),
        }
    }

    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: run until 5 ms or 1000 iters to estimate per-iter cost.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(5) && calib_iters < 1000 {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let iters = ((self.target.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 50_000_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.results.push(elapsed * 1e9 / iters as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One timed invocation per sample; setup runs outside the clock.
        let total = self.samples.max(3);
        for _ in 0..total {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn report(name: &str, results: &mut [f64]) {
    if results.is_empty() {
        println!("{name:<40} time: [no samples]");
        return;
    }
    results.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let lo = results[0];
    let hi = results[results.len() - 1];
    let mid = results[results.len() / 2];
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(mid),
        fmt_ns(hi)
    );
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    target: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: Duration::from_millis(200),
            samples: 5,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.target, self.samples);
        f(&mut b);
        report(name, &mut b.results);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.clamp(2, 100));
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let samples = self.samples.unwrap_or(self.criterion.samples);
        let mut b = Bencher::new(self.criterion.target, samples);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.results);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let samples = self.samples.unwrap_or(self.criterion.samples);
        let mut b = Bencher::new(self.criterion.target, samples);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &mut b.results);
        self
    }

    /// Finishes the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion {
            target: Duration::from_millis(2),
            samples: 3,
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher::new(Duration::from_millis(1), 3);
        b.iter_batched(
            || vec![1u64; 16],
            |v| v.iter().sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert_eq!(b.results.len(), 3);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
    }
}
