//! Minimal offline shim for the subset of the `proptest` API this
//! workspace uses: the `proptest!` / `prop_assert*!` / `prop_oneof!`
//! macros, `Strategy` with `prop_map`, range and tuple strategies,
//! `any::<T>()`, `prop::collection::{vec, btree_set}`, `prop::option::of`,
//! `prop::sample::Index`, and `ProptestConfig::with_cases`.
//!
//! Semantics versus real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name), there is NO shrinking, and a
//! failing case panics with the case number so it can be reproduced by
//! rerunning the same test binary. That keeps the same "randomized
//! model-check" coverage while building with zero external crates.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator driving all strategies (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, deterministically.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Produces the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, bound); `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a non-zero bound");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A failing property-test case; `prop_assert*!` returns this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Generates values for a property test.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for use in heterogeneous unions (`prop_oneof!`).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Chooses uniformly among alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical "draw anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy drawing any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let n = self.size.start + if span == 0 { 0 } else { rng.below(span) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end - self.size.start;
            let n = self.size.start + if span == 0 { 0 } else { rng.below(span) };
            let mut set = BTreeSet::new();
            // Collisions shrink the set below target size; bound the retries
            // so degenerate element domains still terminate.
            let mut attempts = 0;
            while set.len() < n && attempts < n * 10 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Sets of `element` with size drawn from `size` (best effort when the
    /// element domain is small).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty set size range");
        BTreeSetStrategy { element, size }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` of the inner strategy half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An arbitrary index, projected into any collection length via
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this draw into `[0, len)`; `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index requires a non-empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{any, Any, Arbitrary, ProptestConfig, Strategy, TestCaseError, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec` etc. resolve after a
    /// glob import of this prelude.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case unless the operands differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

/// Chooses uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

/// Declares property tests; each `fn` becomes a `#[test]` running the
/// body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        err
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn strategies_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..200 {
            let v = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.0f64..5.0).generate(&mut rng);
            assert!((0.0..5.0).contains(&f));
            let (a, b) = ((0u32..4), (0usize..2)).generate(&mut rng);
            assert!(a < 4 && b < 2);
            let items = prop::collection::vec(0u8..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&items.len()));
            let set: BTreeSet<u64> =
                prop::collection::btree_set(any::<u64>(), 0..4).generate(&mut rng);
            assert!(set.len() < 4);
            let opt = prop::option::of(0u8..3).generate(&mut rng);
            assert!(opt.is_none() || opt.unwrap() < 3);
            let idx = any::<prop::sample::Index>().generate(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let s = prop_oneof![(0u8..1).prop_map(|_| 'a'), (0u8..1).prop_map(|_| 'b')];
        let mut rng = crate::TestRng::for_test("union");
        let mut seen = BTreeSet::new();
        for _ in 0..64 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires args, config, and assertions together.
        #[test]
        fn macro_smoke(x in 0u64..100, v in prop::collection::vec(0u32..10, 1..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len(), "case {}", x);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
