//! Minimal offline shim for the subset of `parking_lot` this workspace
//! uses: `RwLock` (and `Mutex` for good measure), delegating to the std
//! primitives. Poisoning is swallowed — parking_lot locks don't poison,
//! so this matches the expected semantics.

use std::fmt;

/// Shared-reader / exclusive-writer lock over std's `RwLock`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Read guard; derefs to `T`.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard; derefs mutably to `T`.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Exclusive access through a unique reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Mutual-exclusion lock over std's `Mutex`, without poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Mutex guard; derefs mutably to `T`.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
